#include "tools/safeloc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace safeloc::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdentifier, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Suppression {
  std::string rule;
  std::string reason;
};

struct LexResult {
  std::vector<Token> tokens;
  /// line -> allow() directives found in comments on that line.
  std::map<int, std::vector<Suppression>> suppressions;
  /// `// lint-as: <path>` override (empty = none).
  std::string lint_as;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scans comment text for `safeloc-lint: allow(Rn reason)` directives (any
/// number per comment) and a `lint-as: <path>` override.
void scan_comment(std::string_view text, int line, LexResult& out) {
  constexpr std::string_view kAllow = "safeloc-lint: allow(";
  std::size_t pos = 0;
  while ((pos = text.find(kAllow, pos)) != std::string_view::npos) {
    pos += kAllow.size();
    const std::size_t close = text.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string_view body = text.substr(pos, close - pos);
    const std::size_t space = body.find(' ');
    Suppression s;
    s.rule = std::string(body.substr(0, space));
    if (space != std::string_view::npos) {
      s.reason = std::string(body.substr(space + 1));
    }
    if (!s.rule.empty()) out.suppressions[line].push_back(std::move(s));
    pos = close + 1;
  }
  constexpr std::string_view kLintAs = "lint-as:";
  if (out.lint_as.empty()) {
    const std::size_t at = text.find(kLintAs);
    if (at != std::string_view::npos) {
      std::size_t begin = at + kLintAs.size();
      while (begin < text.size() && text[begin] == ' ') ++begin;
      std::size_t end = begin;
      while (end < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      out.lint_as = std::string(text.substr(begin, end - begin));
    }
  }
}

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto advance_over = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (src[i] == '\n') ++line;
      ++i;
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance_over(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      scan_comment(src.substr(i, stop - i), line, out);
      advance_over(stop - i);
      continue;
    }
    // Block comment (suppressions attach to its first line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      scan_comment(src.substr(i, stop - i), line, out);
      advance_over(stop - i);
      continue;
    }
    // Preprocessor directive: skip to an unescaped newline. Include paths
    // and macro bodies are not rule territory for a token linter.
    if (c == '#') {
      while (i < n) {
        const std::size_t end = src.find('\n', i);
        if (end == std::string_view::npos) {
          advance_over(n - i);
          break;
        }
        const bool continued = end > i && src[end - 1] == '\\';
        advance_over(end - i + 1);
        if (!continued) break;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim" — no escapes inside.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '(') ++j;
      const std::string closer =
          ")" + std::string(src.substr(i + 2, j - (i + 2))) + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + closer.size();
      out.tokens.push_back({TokKind::kString, "", line});
      advance_over(stop - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      advance_over(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) advance_over(1);
        advance_over(1);
      }
      advance_over(1);  // closing quote
      out.tokens.push_back({TokKind::kString, "", start_line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdentifier, std::string(src.substr(i, j - i)), line});
      advance_over(j - i);
      continue;
    }
    // Number (coarse: digits, dots, exponents, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(i, j - i)), line});
      advance_over(j - i);
      continue;
    }
    // Punctuation. Only `::` and `->` are fused (the rules key on them);
    // everything else stays a single char so template `>>` closes cleanly.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      advance_over(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      advance_over(2);
      continue;
    }
    if (c == '<' && i + 1 < n && src[i + 1] == '<') {
      out.tokens.push_back({TokKind::kPunct, "<<", line});
      advance_over(2);
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance_over(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the matching closer for the opener at `open`, or npos.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return std::string_view::npos;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool path_starts_with(std::string_view path, std::string_view prefix) {
  return starts_with(path, prefix);
}

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kCatalog = {
    {"R1", "raw-getenv",
     "raw ::getenv bypasses strict env parsing (typo'd knobs must fail "
     "loudly, not parse to 0); only src/util/config.cpp may call it",
     "route through util::env_string / env_optional / env_int_strict / "
     "env_double_strict (src/util/config.h)"},
    {"R2", "nondeterminism",
     "core/, fl/ and nn/ guarantee bit-identical replays; wall-clock and "
     "platform RNG seeds (rand, srand, random_device, time(), "
     "system_clock) and contraction-dependent std::fma break that",
     "seed util::Rng from the ScenarioSpec; use steady_clock only for "
     "durations outside the deterministic core; keep mul+add separate "
     "(-ffp-contract=off is pinned repo-wide)"},
    {"R3", "unexhausted-decoder",
     "every SFRP wire decoder and SFST/SFPM top-level loader must call "
     "util::expect_exhausted before returning, so trailing bytes (format "
     "skew, torn writes) fail loudly instead of being silently ignored",
     "call util::expect_exhausted(in, context) after the last read"},
    {"R4", "naked-lock",
     "manual .lock()/.unlock() leaks the lock on every exception path "
     "between them",
     "hold the mutex with std::scoped_lock / lock_guard / unique_lock"},
    {"R5", "unordered-serialization",
     "iterating an unordered container into JSON/CSV/wire output makes the "
     "serialized bytes hash-seed-dependent — goldens and cross-process "
     "diffs go nondeterministic",
     "serialize from std::map, or copy keys out and sort before writing"},
    {"R6", "throwing-rollback",
     "abort_*/rollback* methods run on 2PC failure paths (often from "
     "destructors or catch blocks); if they can throw, an abort can "
     "terminate the process mid-recovery",
     "declare the method noexcept and keep its body exception-free"},
    {"R7", "unguarded-mutex",
     "a mutex data member in a class whose body carries no "
     "SAFELOC_GUARDED_BY protects nothing the thread-safety analyzer can "
     "see — lock discipline silently erodes as fields are added",
     "annotate every field the mutex protects with SAFELOC_GUARDED_BY(mu); "
     "a mutex that guards no data by design needs an allow(R7) stating the "
     "invariant"},
    {"R8", "predicate-less-wait",
     "a condition-variable wait without a predicate does not recheck its "
     "condition after spurious or stolen wakeups, so the caller can resume "
     "on state that no longer holds",
     "fold the condition into the wait: cv.wait(mu, [&] { return ready; }); "
     "wait_for/wait_until take the predicate as a third argument and "
     "return its value on timeout"},
    {"R9", "raw-sync-primitive",
     "raw std mutexes, RAII guards, condition variables and detached "
     "threads bypass src/util/sync.h, so clang -Wthread-safety cannot see "
     "the locking at all; detach() also orphans threads past shutdown",
     "use sync::Mutex / sync::MutexLock / sync::CondVar / "
     "sync::ReleasableLock (src/util/sync.h) and join every thread"},
};

const RuleInfo& rule(std::string_view id) {
  for (const RuleInfo& r : kCatalog) {
    if (id == r.id) return r;
  }
  return kCatalog.front();
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct RuleContext {
  std::string_view path;  ///< effective display path (after lint-as)
  const std::vector<Token>& toks;
  std::vector<Finding>& findings;

  void add(std::string_view id, int line) const {
    const RuleInfo& info = rule(id);
    Finding f;
    f.line = line;
    f.rule = std::string(id);
    f.message = std::string(info.invariant) + " — " + info.fixit;
    findings.push_back(std::move(f));
  }
};

/// R1: identifier `getenv` called anywhere but src/util/config.cpp.
void rule_r1(const RuleContext& ctx) {
  if (ctx.path == "src/util/config.cpp") return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "getenv") && is_punct(toks[i + 1], "(")) {
      ctx.add("R1", toks[i].line);
    }
  }
}

/// R2: nondeterminism sources inside the bit-identical layers.
void rule_r2(const RuleContext& ctx) {
  if (!path_starts_with(ctx.path, "src/core/") &&
      !path_starts_with(ctx.path, "src/fl/") &&
      !path_starts_with(ctx.path, "src/nn/")) {
    return;
  }
  static const std::set<std::string_view> kBannedCalls = {
      "rand", "srand", "time", "fma", "fmaf"};
  static const std::set<std::string_view> kBannedNames = {
      "random_device", "system_clock"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (kBannedNames.count(toks[i].text) != 0) {
      ctx.add("R2", toks[i].line);
      continue;
    }
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        kBannedCalls.count(toks[i].text) != 0) {
      // Member access (obj.time()) is someone's own API, and a preceding
      // type name (int rand() {...}) is a declaration of an unrelated
      // function — only flag free or ::-qualified CALLS. Keywords that
      // introduce an expression are not type names.
      static const std::set<std::string_view> kExprKeywords = {
          "return",   "co_return", "co_await", "co_yield",
          "throw",    "case",      "else",     "do"};
      const bool after_type_name =
          i > 0 && toks[i - 1].kind == TokKind::kIdentifier &&
          kExprKeywords.count(toks[i - 1].text) == 0;
      if (i > 0 && (is_punct(toks[i - 1], ".") ||
                    is_punct(toks[i - 1], "->") || after_type_name)) {
        continue;
      }
      ctx.add("R2", toks[i].line);
    }
  }
}

/// R3: decoder definitions that never call expect_exhausted. Scope: any
/// `decode_*` definition under src/serve/remote/, plus the top-level
/// whole-stream loaders (`load`) of the SFST model store and SFPM partition
/// map. Embedded loaders (StateDict::load, read_model_record) are
/// deliberately out of scope — their streams continue past them.
void rule_r3(const RuleContext& ctx) {
  const bool wire_scope = path_starts_with(ctx.path, "src/serve/remote/");
  const bool store_scope = ctx.path == "src/serve/model_store.cpp" ||
                           ctx.path == "src/serve/partition.cpp";
  if (!wire_scope && !store_scope) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const bool decoder = wire_scope && starts_with(toks[i].text, "decode_");
    const bool loader = store_scope && toks[i].text == "load";
    if (!decoder && !loader) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string_view::npos) continue;
    // A definition follows its parameter list with (possibly qualified)
    // specifiers then `{`; a call site hits `;`, an operator, or `)` first.
    std::size_t j = close + 1;
    static const std::set<std::string_view> kSpecifiers = {
        "const", "noexcept", "override", "final", "&", "&&"};
    while (j < toks.size() &&
           kSpecifiers.count(toks[j].text) != 0) {
      ++j;
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    const std::size_t stop =
        body_end == std::string_view::npos ? toks.size() : body_end;
    bool exhausted = false;
    for (std::size_t k = j; k < stop; ++k) {
      if (is_ident(toks[k], "expect_exhausted")) {
        exhausted = true;
        break;
      }
    }
    if (!exhausted) ctx.add("R3", toks[i].line);
  }
}

/// R4: member-access .lock() / .unlock() — the RAII-less idiom.
void rule_r4(const RuleContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "(")) continue;
    const Token& name = toks[i - 1];
    if (name.kind != TokKind::kIdentifier ||
        (name.text != "lock" && name.text != "unlock")) {
      continue;
    }
    if (is_punct(toks[i - 2], ".") || is_punct(toks[i - 2], "->")) {
      ctx.add("R4", name.line);
    }
  }
}

/// R5: range-for over a variable declared as an unordered container, whose
/// loop body feeds a serializer (write_pod/write_string/to_json/... or <<).
void rule_r5(const RuleContext& ctx) {
  const auto& toks = ctx.toks;
  // Pass 1: names declared with unordered_map/unordered_set in this TU.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "unordered_map") &&
        !is_ident(toks[i], "unordered_set")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
    const std::size_t close = match_forward(toks, j, "<", ">");
    if (close == std::string_view::npos) continue;
    j = close + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      unordered_names.insert(toks[j].text);
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-fors whose range expression names one of them.
  static const std::set<std::string_view> kSerializers = {
      "write_pod", "write_string", "write_json", "to_json", "to_csv",
      "append_json", "append_csv", "write_row"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string_view::npos) continue;
    // The range-for colon sits at paren depth 1 (`::` is a distinct token).
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(toks[k], "(")) ++depth;
      else if (is_punct(toks[k], ")")) --depth;
      else if (depth == 1 && is_punct(toks[k], ":")) {
        colon = k;
        break;
      }
    }
    if (colon == std::string_view::npos) continue;
    bool over_unordered = false;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind == TokKind::kIdentifier &&
          unordered_names.count(toks[k].text) != 0) {
        over_unordered = true;
        break;
      }
    }
    if (!over_unordered) continue;
    // Loop body: braced block or single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
      body_end = match_forward(toks, body_begin, "{", "}");
      if (body_end == std::string_view::npos) body_end = toks.size();
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
        ++body_end;
      }
    }
    for (std::size_t k = body_begin; k < body_end; ++k) {
      if (is_punct(toks[k], "<<") ||
          (toks[k].kind == TokKind::kIdentifier &&
           kSerializers.count(toks[k].text) != 0)) {
        ctx.add("R5", toks[i].line);
        break;
      }
    }
  }
}

/// R6: declarations/definitions of abort_*/rollback* methods without
/// noexcept. Call sites (preceded by `.`/`->`, or inside an expression) are
/// skipped via a declarator-context heuristic on the preceding tokens.
void rule_r6(const RuleContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& name = toks[i];
    if (name.kind != TokKind::kIdentifier ||
        (!starts_with(name.text, "abort_") &&
         !starts_with(name.text, "rollback"))) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    // Walk back over a qualified-name chain (Class::abort_x) to the token
    // introducing it; a declaration is preceded by a type (identifier, `>`,
    // `&`, `*`), a call by `.`/`->`/operators/statement punctuation.
    std::size_t b = i;
    while (b >= 2 && is_punct(toks[b - 1], "::") &&
           toks[b - 2].kind == TokKind::kIdentifier) {
      b -= 2;
    }
    if (b == 0) continue;
    const Token& before = toks[b - 1];
    const bool declarator_context =
        before.kind == TokKind::kIdentifier || is_punct(before, ">") ||
        is_punct(before, "&") || is_punct(before, "*");
    if (!declarator_context) continue;
    if (before.kind == TokKind::kIdentifier &&
        (before.text == "return" || before.text == "co_return" ||
         before.text == "co_await" || before.text == "throw")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string_view::npos) continue;
    // Between `)` and the `{`/`;`/`=` ending the declarator, look for
    // noexcept. Anything unexpected (`,`, `)`, operators) means this was an
    // expression after all — skip.
    bool noexcept_found = false;
    bool is_declaration = false;
    for (std::size_t k = close + 1; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (is_ident(t, "noexcept")) {
        noexcept_found = true;
        if (k + 1 < toks.size() && is_punct(toks[k + 1], "(")) {
          const std::size_t ne_close = match_forward(toks, k + 1, "(", ")");
          if (ne_close == std::string_view::npos) break;
          k = ne_close;
        }
        continue;
      }
      if (is_ident(t, "const") || is_ident(t, "override") ||
          is_ident(t, "final") || is_punct(t, "&") || is_punct(t, "&&")) {
        continue;
      }
      if (is_punct(t, "{") || is_punct(t, ";") || is_punct(t, "=")) {
        is_declaration = true;
        break;
      }
      break;  // expression context (e.g. `+`, `,`, `)`) — not a declarator
    }
    if (is_declaration && !noexcept_found) ctx.add("R6", name.line);
  }
}

/// R7: a sync::Mutex / std::mutex data member inside a class/struct whose
/// body carries no SAFELOC_GUARDED_BY at all. Class-level by design: one
/// annotated sibling proves the author engaged the analyzer; zero means the
/// mutex is decoration. Fires only when the class holds at least one other
/// data member (a mutex alone has nothing to guard), and only under src/ —
/// tests and tools build ad-hoc mutexes whose guarded set is the local
/// scope. src/util/sync.h defines the primitives and is exempt.
void rule_r7(const RuleContext& ctx) {
  if (!path_starts_with(ctx.path, "src/") ||
      ctx.path == "src/util/sync.h") {
    return;
  }
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "class") && !is_ident(toks[i], "struct")) {
      continue;
    }
    // `enum class` and `template <class T>` introduce no class body.
    if (i > 0 && (is_ident(toks[i - 1], "enum") ||
                  is_punct(toks[i - 1], "<") || is_punct(toks[i - 1], ","))) {
      continue;
    }
    // Find the body `{` before any `;` (skips forward declarations).
    std::size_t open = i + 1;
    while (open < toks.size() && !is_punct(toks[open], "{") &&
           !is_punct(toks[open], ";")) {
      ++open;
    }
    if (open >= toks.size() || !is_punct(toks[open], "{")) continue;
    const std::size_t body_end = match_forward(toks, open, "{", "}");
    if (body_end == std::string_view::npos) continue;

    bool has_guarded = false;
    for (std::size_t k = open; k < body_end; ++k) {
      if (is_ident(toks[k], "SAFELOC_GUARDED_BY") ||
          is_ident(toks[k], "SAFELOC_PT_GUARDED_BY")) {
        has_guarded = true;
        break;
      }
    }
    if (has_guarded) continue;

    // Walk depth-1 statements: mutex members to flag, any other data
    // member as evidence the class holds state worth annotating.
    std::vector<int> mutex_lines;
    std::size_t data_members = 0;
    const auto classify = [&](std::size_t stmt, std::size_t end) {
      // Skip an access-specifier prefix fused into the statement.
      if (stmt + 1 < end && is_punct(toks[stmt + 1], ":") &&
          (is_ident(toks[stmt], "public") ||
           is_ident(toks[stmt], "private") ||
           is_ident(toks[stmt], "protected"))) {
        stmt += 2;
      }
      if (stmt >= end || end - stmt < 2) return;
      if (is_ident(toks[stmt], "using") || is_ident(toks[stmt], "typedef") ||
          is_ident(toks[stmt], "friend") || is_ident(toks[stmt], "static") ||
          is_ident(toks[stmt], "class") || is_ident(toks[stmt], "struct") ||
          is_ident(toks[stmt], "enum") || is_ident(toks[stmt], "union")) {
        return;
      }
      int mutex_line = 0;
      bool has_paren = false;
      for (std::size_t t = stmt; t < end; ++t) {
        if (is_punct(toks[t], "(")) has_paren = true;
        if (t + 2 < end && is_punct(toks[t + 1], "::") &&
            ((is_ident(toks[t], "sync") && is_ident(toks[t + 2], "Mutex")) ||
             (is_ident(toks[t], "std") && is_ident(toks[t + 2], "mutex")))) {
          mutex_line = toks[t + 2].line;
        }
      }
      if (has_paren) return;  // function declarator, not a data member
      if (mutex_line != 0) {
        mutex_lines.push_back(mutex_line);
      } else {
        ++data_members;
      }
    };
    std::size_t stmt = open + 1;
    for (std::size_t k = open + 1; k < body_end; ++k) {
      if (is_punct(toks[k], "{")) {
        // Method body, nested type, or a brace-initialized member. Skip
        // the braced region; classify `T name{init};` by its header.
        const std::size_t close = match_forward(toks, k, "{", "}");
        if (close == std::string_view::npos ||
            close >= body_end) {
          break;
        }
        if (close + 1 < body_end && is_punct(toks[close + 1], ";")) {
          classify(stmt, k);
        }
        k = close;
        stmt = k + 1;
        continue;
      }
      if (!is_punct(toks[k], ";")) continue;
      classify(stmt, k);
      stmt = k + 1;
    }
    if (data_members > 0) {
      for (const int line : mutex_lines) ctx.add("R7", line);
    }
  }
}

/// R8: condition-variable waits without a predicate. A one-argument
/// `.wait(lock)` re-blocks only by luck — spurious and stolen wakeups
/// resume the caller with the condition false; two-argument timed waits
/// share the bug. Zero-argument wait() (futures, latches, barriers) is a
/// different API and is left alone.
void rule_r8(const RuleContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    const Token& name = toks[i];
    if (name.kind != TokKind::kIdentifier) continue;
    const bool plain = name.text == "wait";
    const bool timed = name.text == "wait_for" || name.text == "wait_until";
    if (!plain && !timed) continue;
    if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string_view::npos) continue;
    // Count top-level arguments: commas at paren depth 1 outside nested
    // braces/brackets (lambda captures and bodies, init lists).
    int paren = 0;
    int brace = 0;
    int bracket = 0;
    std::size_t args = close > i + 2 ? 1 : 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(toks[k], "(")) ++paren;
      else if (is_punct(toks[k], ")")) --paren;
      else if (is_punct(toks[k], "{")) ++brace;
      else if (is_punct(toks[k], "}")) --brace;
      else if (is_punct(toks[k], "[")) ++bracket;
      else if (is_punct(toks[k], "]")) --bracket;
      else if (paren == 1 && brace == 0 && bracket == 0 &&
               is_punct(toks[k], ",")) {
        ++args;
      }
    }
    if ((plain && args == 1) || (timed && args == 2)) {
      ctx.add("R8", name.line);
    }
  }
}

/// R9: raw standard-library synchronization outside src/util/sync.h. The
/// annotated layer is mandatory — an unannotated std::mutex is invisible
/// to -Wthread-safety, and std::thread::detach orphans a thread past every
/// shutdown joint the servers rely on.
void rule_r9(const RuleContext& ctx) {
  if (ctx.path == "src/util/sync.h") return;
  static const std::set<std::string_view> kRawTypes = {
      "mutex",           "recursive_mutex",
      "timed_mutex",     "recursive_timed_mutex",
      "shared_mutex",    "condition_variable",
      "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock",     "shared_lock"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
        toks[i + 2].kind == TokKind::kIdentifier &&
        kRawTypes.count(toks[i + 2].text) != 0) {
      ctx.add("R9", toks[i + 2].line);
    }
  }
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(") && is_ident(toks[i - 1], "detach") &&
        (is_punct(toks[i - 2], ".") || is_punct(toks[i - 2], "->"))) {
      ctx.add("R9", toks[i - 1].line);
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

constexpr std::string_view kScanDirs[] = {"src", "tools", "bench", "examples",
                                          "tests"};

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

bool in_fixture_corpus(const std::filesystem::path& p) {
  for (const auto& part : p) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return kCatalog; }

FileReport lint_file(std::string_view display_path,
                     std::string_view content) {
  LexResult lexed = lex(content);
  const std::string_view effective_path =
      lexed.lint_as.empty() ? display_path : std::string_view(lexed.lint_as);

  std::vector<Finding> raw;
  const RuleContext ctx{effective_path, lexed.tokens, raw};
  rule_r1(ctx);
  rule_r2(ctx);
  rule_r3(ctx);
  rule_r4(ctx);
  rule_r5(ctx);
  rule_r6(ctx);
  rule_r7(ctx);
  rule_r8(ctx);
  rule_r9(ctx);

  FileReport report;
  for (Finding& f : raw) {
    f.file = std::string(display_path);
    const Suppression* matched = nullptr;
    for (const int line : {f.line, f.line - 1}) {
      const auto it = lexed.suppressions.find(line);
      if (it == lexed.suppressions.end()) continue;
      for (const Suppression& s : it->second) {
        if (s.rule == f.rule) {
          matched = &s;
          break;
        }
      }
      if (matched != nullptr) break;
    }
    if (matched != nullptr) {
      f.suppress_reason = matched->reason;
      report.suppressed.push_back(std::move(f));
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  const auto by_position = [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_position);
  std::sort(report.suppressed.begin(), report.suppressed.end(), by_position);
  return report;
}

TreeReport lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  TreeReport report;
  // A bad root must be an error, not a silently clean 0-file scan — a
  // misspelled --root in CI would otherwise pass green forever.
  if (std::error_code root_ec;
      !fs::is_directory(fs::path(root), root_ec)) {
    report.errors.push_back("root is not a directory: " + root);
    return report;
  }
  std::vector<fs::path> files;
  for (const std::string_view dir : kScanDirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      if (!lintable_extension(p) || in_fixture_corpus(p)) continue;
      files.push_back(p);
    }
    if (ec) {
      report.errors.push_back("cannot walk " + base.string() + ": " +
                              ec.message());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read " + p.string());
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string display =
        fs::path(fs::relative(p, root)).generic_string();
    FileReport file_report = lint_file(display, buffer.str());
    ++report.files_scanned;
    for (Finding& f : file_report.findings) {
      report.findings.push_back(std::move(f));
    }
    for (Finding& f : file_report.suppressed) {
      report.suppressed.push_back(std::move(f));
    }
  }
  return report;
}

std::string format_finding(const Finding& finding, bool suppressed) {
  std::string out = finding.file + ":" + std::to_string(finding.line) +
                    ": " + finding.rule + ": " + finding.message;
  if (suppressed) {
    out += " [suppressed";
    if (!finding.suppress_reason.empty()) {
      out += ": " + finding.suppress_reason;
    }
    out += "]";
  }
  return out;
}

}  // namespace safeloc::lint
