#!/usr/bin/env python3
"""clang-tidy ratchet for the safeloc tree, mirroring check_bench.py.

Runs clang-tidy (profile: .clang-tidy) over every translation unit in the
build's compile_commands.json and compares per-(file, check) finding counts
against the checked-in baseline in scripts/tidy_baseline.json:

  * a count ABOVE the baseline is a NEW finding -> exit 1 (CI fails),
  * a count below the baseline passes, with a reminder to tighten the
    ratchet via --update so the improvement cannot regress,
  * absolute counts never gate -- only growth does, so the tree can carry
    legacy findings without letting new code add more.

Usage:
  python3 scripts/run_tidy.py                 # gate against the baseline
  python3 scripts/run_tidy.py --update        # refresh the baseline
  python3 scripts/run_tidy.py --self-test     # exercise the ratchet logic
                                              # (no clang-tidy needed; run
                                              # in ctest as
                                              # tidy_ratchet_selftest)

Requires CMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo's CMakeLists sets it)
and a clang-tidy binary (override with --clang-tidy or CLANG_TIDY).

stdlib only -- no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any

SCHEMA = "safeloc.tidy_baseline/v1"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
EXCLUDED_PARTS = ("lint_fixtures",)

# "path:line:col: warning: message [check-a,check-b]"
FINDING_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"warning: (?P<message>.*) \[(?P<check>[^\]\s]+)\]$",
    re.MULTILINE,
)


def relevant_sources(build_dir: pathlib.Path) -> list[pathlib.Path]:
    """Repo TUs listed in compile_commands.json, minus the fixture corpus."""
    commands_path = build_dir / "compile_commands.json"
    try:
        with commands_path.open() as fh:
            commands: list[dict[str, Any]] = json.load(fh)
    except FileNotFoundError:
        sys.exit(
            f"run_tidy: {commands_path} missing -- configure with "
            "`cmake -B build -S .` (CMAKE_EXPORT_COMPILE_COMMANDS is on by "
            "default in this repo)"
        )
    except json.JSONDecodeError as err:
        sys.exit(f"run_tidy: {commands_path} is not valid JSON: {err}")

    sources: list[pathlib.Path] = []
    for entry in commands:
        path = pathlib.Path(str(entry.get("file", ""))).resolve()
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            continue  # generated / external TU
        if rel.parts and rel.parts[0] not in SCAN_DIRS:
            continue
        if any(part in EXCLUDED_PARTS for part in rel.parts):
            continue
        sources.append(path)
    return sorted(set(sources))


def run_one(
    binary: str, build_dir: pathlib.Path, source: pathlib.Path
) -> str:
    """clang-tidy output for one TU (never raises -- diagnostics are data)."""
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", str(source)],
        capture_output=True,
        text=True,
        check=False,
        cwd=REPO_ROOT,
    )
    return proc.stdout


def collect_findings(
    binary: str, build_dir: pathlib.Path, jobs: int
) -> dict[str, int]:
    """Per-'relpath::check' finding counts across every relevant TU."""
    sources = relevant_sources(build_dir)
    if not sources:
        sys.exit("run_tidy: no repo sources found in compile_commands.json")
    print(f"run_tidy: analyzing {len(sources)} TU(s) with {binary}")
    counts: dict[str, int] = {}
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        outputs = pool.map(
            lambda src: run_one(binary, build_dir, src), sources
        )
        for output in outputs:
            for match in FINDING_RE.finditer(output):
                path = pathlib.Path(match.group("path"))
                if not path.is_absolute():
                    path = (REPO_ROOT / path).resolve()
                try:
                    rel = path.resolve().relative_to(REPO_ROOT)
                except ValueError:
                    continue  # system header noise
                if any(part in EXCLUDED_PARTS for part in rel.parts):
                    continue
                key = f"{rel.as_posix()}::{match.group('check')}"
                counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: pathlib.Path) -> dict[str, int]:
    try:
        with path.open() as fh:
            data: dict[str, Any] = json.load(fh)
    except FileNotFoundError:
        sys.exit(
            f"run_tidy: baseline {path} missing -- create it with --update"
        )
    except json.JSONDecodeError as err:
        sys.exit(f"run_tidy: baseline {path} is not valid JSON: {err}")
    if data.get("schema") != SCHEMA:
        sys.exit(
            f"run_tidy: baseline schema {data.get('schema')!r} != {SCHEMA!r}"
            " -- refresh with --update"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        sys.exit("run_tidy: baseline 'findings' must be an object")
    return {str(key): int(value) for key, value in findings.items()}


def write_baseline(path: pathlib.Path, counts: dict[str, int]) -> None:
    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "comment": (
            "clang-tidy ratchet baseline -- per-(file, check) finding "
            "counts. CI fails only when a count grows; refresh with "
            "`python3 scripts/run_tidy.py --update` after paying findings "
            "down."
        ),
        "findings": dict(sorted(counts.items())),
    }
    with path.open("w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"run_tidy: baseline written to {path} ({len(counts)} key(s))")


def diff_against_baseline(
    current: dict[str, int], baseline: dict[str, int]
) -> tuple[list[str], list[str]]:
    """(new-finding failures, improvement notes). The ratchet core."""
    failures: list[str] = []
    improved: list[str] = []
    for key in sorted(set(current) | set(baseline)):
        have = current.get(key, 0)
        allowed = baseline.get(key, 0)
        if have > allowed:
            failures.append(
                f"{key}: {have} finding(s), baseline allows {allowed} "
                f"(+{have - allowed} NEW)"
            )
        elif have < allowed:
            improved.append(
                f"{key}: {have} finding(s), baseline still budgets "
                f"{allowed} -- tighten with --update"
            )
    return failures, improved


def self_test() -> int:
    """Ratchet-logic regression test; runs in ctest without clang-tidy."""
    baseline = {"src/a.cpp::bugprone-use-after-move": 2}

    # Unchanged tree: no failures, no improvements.
    failures, improved = diff_against_baseline(dict(baseline), baseline)
    assert not failures and not improved, (failures, improved)

    # A newly introduced finding in a known-dirty file fails.
    failures, _ = diff_against_baseline(
        {"src/a.cpp::bugprone-use-after-move": 3}, baseline
    )
    assert len(failures) == 1 and "+1 NEW" in failures[0], failures

    # A finding in a previously clean file fails.
    failures, _ = diff_against_baseline(
        {
            "src/a.cpp::bugprone-use-after-move": 2,
            "src/b.cpp::concurrency-mt-unsafe": 1,
        },
        baseline,
    )
    assert len(failures) == 1 and "src/b.cpp" in failures[0], failures

    # Paying a finding down passes and nudges toward --update.
    failures, improved = diff_against_baseline(
        {"src/a.cpp::bugprone-use-after-move": 1}, baseline
    )
    assert not failures and len(improved) == 1, (failures, improved)

    # Round-trip: a written baseline reloads to the same counts.
    scratch = REPO_ROOT / "build" / "tidy_baseline_selftest.json"
    scratch.parent.mkdir(parents=True, exist_ok=True)
    write_baseline(scratch, baseline)
    assert load_baseline(scratch) == baseline
    scratch.unlink()

    print("run_tidy: self-test passed (ratchet diff + baseline round-trip)")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=REPO_ROOT / "build",
                        type=pathlib.Path,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--baseline",
                        default=REPO_ROOT / "scripts" / "tidy_baseline.json",
                        type=pathlib.Path,
                        help="checked-in ratchet baseline")
    parser.add_argument("--clang-tidy",
                        default=os.environ.get("CLANG_TIDY", "clang-tidy"),
                        help="clang-tidy binary (or $CLANG_TIDY)")
    parser.add_argument("--jobs", default=os.cpu_count() or 2, type=int,
                        help="parallel clang-tidy processes")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from this run")
    parser.add_argument("--self-test", action="store_true",
                        help="test the ratchet logic itself (no clang-tidy)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    binary = str(args.clang_tidy)
    if shutil.which(binary) is None:
        sys.exit(
            f"run_tidy: clang-tidy binary {binary!r} not found -- install "
            "clang-tidy or point --clang-tidy/$CLANG_TIDY at one"
        )

    current = collect_findings(binary, args.build_dir, max(1, args.jobs))
    total = sum(current.values())
    print(f"run_tidy: {total} finding(s) across {len(current)} "
          "(file, check) key(s)")

    if args.update:
        write_baseline(args.baseline, current)
        return

    baseline = load_baseline(args.baseline)
    failures, improved = diff_against_baseline(current, baseline)
    for note in improved:
        print(f"run_tidy: improved: {note}")
    if failures:
        print(f"\nrun_tidy: {len(failures)} NEW finding key(s) vs baseline:",
              file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        print("run_tidy: fix the new findings (or, for a reviewed "
              "exception, refresh the baseline with --update)",
              file=sys.stderr)
        sys.exit(1)
    print("run_tidy: no new clang-tidy findings (ratchet holds)")


if __name__ == "__main__":
    main()
