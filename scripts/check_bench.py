#!/usr/bin/env python3
"""CI bench-regression gate for the serving layer.

Compares a smoke run's BENCH_serve.json / BENCH_route.json (written into the
build directory by `bench_serve --smoke` / `bench_route --smoke`) against the
committed baselines in bench/baselines/, and fails on:

  * >30% qps regression in any grid cell present in both runs (threshold
    configurable via --threshold),
  * a tail-latency regression — any cell's end-to-end p99 exceeding the
    baseline's by more than --tail-threshold (default 75%; the tail is
    noisier than the mean, so the ceiling is generous and exists to catch
    step-function regressions like a lost batch window or a stage that
    started blocking),
  * a missing or empty per-stage telemetry block — every serve cell must
    carry admission/routing/queue-wait/batch-form/inference/e2e stage
    histograms with nonzero counts, and the remote route cell must also
    show the wire legs (serialize/RPC/deserialize); a stage that stops
    being recorded would silently blind the tail gate,
  * a kernel-dispatch mismatch — the runtime-selected GEMM variant differs
    from the baseline's (a silently degraded dispatch is exactly the
    regression this gate exists to catch),
  * an AVX2-vs-scalar kernel speedup below --min-simd-speedup (default 1.5x)
    on cache-busting shapes, when both runs support AVX2. This check is
    machine-independent (both numbers come from the same run), so it holds
    even when absolute qps between baseline and CI hardware differ,
  * a broken fleet memory contract — the multi-process route cell
    (transport "remote": real shard_server child processes behind the SFRP
    wire protocol) must report every shard's resident-model count equal to
    its partition slice (O(owned), not O(all)); a missing remote cell when
    the baseline has one fails via the grid-shrank check,
  * a remote-throughput-ratio regression — the multi-process remote cell's
    qps falling below --min-remote-ratio of the matching local hash-routed
    cell in the SAME run (machine-independent; catches the pipelined SFRP
    client silently reverting to one blocking RPC at a time),
  * a serve-time poison-gate quality regression, from serve_demo's
    BENCH_gate.json: the post-rounds clean-RCE p99 of the published models
    exceeding the checked-in bound (the decoder went stale — the client
    recon anchor / server-side decoder refresh stopped working), the
    RCE-test attack recall dropping below its floor, or the benign flag
    rate rising above its ceiling. Bounds come from the *baseline* report,
    so they are pinned in-repo.

Baselines are refreshed with:  python3 scripts/check_bench.py --update
(run from the repo root after a smoke run; commits the build-dir reports
into bench/baselines/).

stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from typing import Any

SERVE = "BENCH_serve.json"
ROUTE = "BENCH_route.json"
GATE = "BENCH_gate.json"


def load(path: pathlib.Path) -> dict[str, Any]:
    try:
        with path.open() as fh:
            report: dict[str, Any] = json.load(fh)
            return report
    except FileNotFoundError:
        sys.exit(f"check_bench: missing report {path}")
    except json.JSONDecodeError as err:
        sys.exit(f"check_bench: {path} is not valid JSON: {err}")


def cell_key(cell: dict[str, Any], fields: tuple[str, ...]) -> tuple[Any, ...]:
    return tuple(cell.get(f) for f in fields)


def check_qps(
    name: str,
    baseline_cells: list[dict[str, Any]],
    current_cells: list[dict[str, Any]],
    fields: tuple[str, ...],
    threshold: float,
    failures: list[str],
) -> None:
    current_by_key = {cell_key(c, fields): c for c in current_cells}
    for base in baseline_cells:
        key = cell_key(base, fields)
        cur = current_by_key.get(key)
        label = f"{name} cell {dict(zip(fields, key))}"
        if cur is None:
            failures.append(f"{label}: present in baseline but missing from "
                            "the current run (grid shrank?)")
            continue
        base_qps, cur_qps = base.get("qps", 0.0), cur.get("qps", 0.0)
        if base_qps <= 0:
            continue
        floor = base_qps * (1.0 - threshold)
        if cur_qps < floor:
            failures.append(
                f"{label}: qps regressed {base_qps:,.0f} -> {cur_qps:,.0f} "
                f"({cur_qps / base_qps - 1.0:+.1%}, floor {floor:,.0f} at "
                f"threshold {threshold:.0%})")


def check_tail(
    name: str,
    baseline_cells: list[dict[str, Any]],
    current_cells: list[dict[str, Any]],
    fields: tuple[str, ...],
    tail_threshold: float,
    failures: list[str],
) -> None:
    """End-to-end p99 per cell vs baseline. Missing cells are already
    reported by check_qps, so only matched pairs are compared here."""
    current_by_key = {cell_key(c, fields): c for c in current_cells}
    for base in baseline_cells:
        key = cell_key(base, fields)
        cur = current_by_key.get(key)
        if cur is None:
            continue
        base_p99 = base.get("latency_us", {}).get("p99", 0.0)
        cur_p99 = cur.get("latency_us", {}).get("p99", 0.0)
        if base_p99 <= 0:
            continue
        ceiling = base_p99 * (1.0 + tail_threshold)
        if cur_p99 > ceiling:
            failures.append(
                f"{name} cell {dict(zip(fields, key))}: p99 latency "
                f"regressed {base_p99:,.1f}us -> {cur_p99:,.1f}us "
                f"({cur_p99 / base_p99 - 1.0:+.1%}, ceiling {ceiling:,.1f}us "
                f"at tail threshold {tail_threshold:.0%})")


# Stage histograms every serve cell must record (the engine triple plus the
# service envelope); remote route cells must additionally show the wire legs.
ENGINE_STAGES = ("stage.admission_us", "stage.routing_us", "stage.e2e_us",
                 "stage.queue_wait_us", "stage.batch_form_us",
                 "stage.inference_us")
WIRE_STAGES = ("stage.wire_serialize_us", "stage.wire_rpc_us",
               "stage.wire_deserialize_us", "stage.queue_wait_us")


def check_stages(name: str, cells: list[dict[str, Any]],
                 fields: tuple[str, ...],
                 failures: list[str]) -> None:
    for cell in cells:
        label = f"{name} cell {dict(zip(fields, cell_key(cell, fields)))}"
        stages = cell.get("stages")
        if not isinstance(stages, dict):
            failures.append(f"{label}: no per-stage telemetry block — "
                            "schema too old? refresh baselines with --update")
            continue
        required = list(ENGINE_STAGES)
        if cell.get("transport") == "remote":
            required += [s for s in WIRE_STAGES if s not in required]
        missing = [s for s in required
                   if stages.get(s, {}).get("count", 0) <= 0]
        if missing:
            failures.append(f"{label}: stage histogram(s) missing or empty: "
                            f"{', '.join(missing)}")


def check_dispatch(baseline: dict[str, Any], current: dict[str, Any],
                   failures: list[str]) -> None:
    base_dispatch = baseline.get("kernel_dispatch", {})
    cur_dispatch = current.get("kernel_dispatch", {})
    base_sel = base_dispatch.get("selected")
    cur_sel = cur_dispatch.get("selected")
    if base_sel is None or cur_sel is None:
        failures.append("serve: kernel_dispatch block missing "
                        f"(baseline={base_sel}, current={cur_sel}) — "
                        "schema too old? refresh baselines with --update")
        return
    if base_sel != cur_sel:
        failures.append(
            f"serve: kernel dispatch mismatch — baseline selected "
            f"'{base_sel}', this run selected '{cur_sel}' (supported here: "
            f"{cur_dispatch.get('supported')})")


def check_simd_speedup(current: dict[str, Any], min_speedup: float,
                       failures: list[str]) -> None:
    supported = current.get("kernel_dispatch", {}).get("supported", [])
    if "avx2" not in supported:
        print("check_bench: no AVX2 on this machine, skipping SIMD-speedup "
              "floor")
        return
    checked = 0
    for kernel in current.get("kernels", []):
        if not kernel.get("cache_busting"):
            continue
        us = kernel.get("variants_us", {})
        scalar, avx2 = us.get("scalar"), us.get("avx2")
        if not scalar or not avx2:
            continue
        checked += 1
        speedup = scalar / avx2
        shape = f"{kernel['m']}x{kernel['k']}x{kernel['n']}"
        if speedup < min_speedup:
            failures.append(
                f"serve: AVX2 kernel speedup {speedup:.2f}x < "
                f"{min_speedup:.2f}x floor on cache-busting shape {shape}")
        else:
            print(f"check_bench: AVX2 {speedup:.2f}x scalar on "
                  f"cache-busting {shape} (floor {min_speedup:.2f}x)")
    if checked == 0:
        failures.append("serve: no cache-busting kernel shapes in the "
                        "current report — bench_serve shape sweep shrank?")


def check_route_partition(current: dict[str, Any],
                          failures: list[str]) -> None:
    """Fleet memory contract: in the multi-process cell every shard_server
    child must be resident exactly its partition slice. resident > owned
    means the partition filter leaks (shards grow toward O(all));
    resident < owned means warm-load dropped models the shard owns."""
    for cell in current.get("cells", []):
        if cell.get("transport") != "remote":
            continue
        resident = cell.get("resident_models")
        owned = cell.get("owned_models")
        label = (f"route remote cell {cell.get('mix')}/{cell.get('router')}/"
                 f"{cell.get('shards')}")
        if not resident or not owned:
            failures.append(f"{label}: resident_models/owned_models missing "
                            f"(resident={resident}, owned={owned})")
            continue
        if resident != owned:
            failures.append(f"{label}: per-shard residency {resident} != "
                            f"partition slices {owned} — fleet memory is "
                            "no longer O(owned)")
        else:
            print(f"check_bench: {label} residency {resident} matches "
                  f"partition slices (O(owned) holds)")


def check_remote_ratio(current: dict[str, Any], min_ratio: float,
                       failures: list[str]) -> None:
    """Remote-throughput floor: the pipelined SFRP client must keep the
    multi-process cell within a fixed fraction of the equivalent in-process
    cell. Both numbers come from the same run on the same hardware, so the
    ratio is machine-independent — this is the gate that catches a
    pipelining regression (a client quietly falling back to one blocking
    RPC at a time tanks the ratio ~10x below the floor)."""
    cells = current.get("cells", [])
    remote_cells = [c for c in cells if c.get("transport") == "remote"]
    if not remote_cells:
        failures.append("route: no remote cell in the current run — the "
                        "fleet cell stopped running?")
        return
    for remote in remote_cells:
        label = (f"route remote cell {remote.get('mix')}/"
                 f"{remote.get('router')}/{remote.get('shards')}")
        local = next(
            (c for c in cells
             if c.get("transport") == "local"
             and c.get("mix") == remote.get("mix")
             and c.get("shards") == remote.get("shards")
             and c.get("router") == "hash"), None)
        if local is None:
            failures.append(f"{label}: no matching local hash-routed cell "
                            "to compare against (grid shrank?)")
            continue
        remote_qps, local_qps = remote.get("qps", 0.0), local.get("qps", 0.0)
        if local_qps <= 0:
            continue
        ratio = remote_qps / local_qps
        pipeline = remote.get("pipeline", {})
        if ratio < min_ratio:
            failures.append(
                f"{label}: remote/local throughput ratio {ratio:.3f} below "
                f"the {min_ratio:.2f} floor ({remote_qps:,.0f} vs "
                f"{local_qps:,.0f} qps at pipeline {pipeline}) — wire "
                "pipelining regressed")
        else:
            print(f"check_bench: {label} remote/local ratio {ratio:.3f} "
                  f"(floor {min_ratio:.2f}, pipeline {pipeline})")


def check_gate(baseline: dict[str, Any], current: dict[str, Any],
               failures: list[str]) -> None:
    """Poison-gate quality floors. Bounds are read from the BASELINE report
    (checked into bench/baselines/), values from the current run — so the
    bar cannot drift without a reviewed baseline refresh."""
    bounds = baseline.get("bounds", {})
    if not bounds:
        failures.append("gate: baseline BENCH_gate.json carries no bounds "
                        "block — refresh baselines with --update")
        return
    checks = (
        ("clean_rce_p99", "max_clean_rce_p99", "above",
         "post-rounds clean-RCE floor (stale decoder?)"),
        ("rce_attack_recall", "min_rce_attack_recall", "below",
         "RCE-test attack recall"),
        ("benign_flag_rate", "max_benign_flag_rate", "above",
         "benign flag rate"),
    )
    for value_key, bound_key, direction, what in checks:
        value, bound = current.get(value_key), bounds.get(bound_key)
        if value is None or bound is None:
            failures.append(f"gate: {value_key}/{bound_key} missing "
                            f"(value={value}, bound={bound}) — schema too "
                            "old? refresh baselines with --update")
            continue
        bad = value > bound if direction == "above" else value < bound
        if bad:
            failures.append(f"gate: {what} {value:.4f} is {direction} the "
                            f"checked-in bound {bound:.4f}")
        else:
            print(f"check_bench: gate {value_key} {value:.4f} within bound "
                  f"({bound_key} {bound:.4f})")

    # Per-test attribution (v2): the counters must be present, and when the
    # gate caught anything at all the attribution must not have been lost.
    rce = current.get("flagged_rce")
    envelope = current.get("flagged_envelope")
    if rce is None or envelope is None:
        failures.append("gate: flagged_rce/flagged_envelope missing — "
                        "schema too old? refresh baselines with --update")
    elif current.get("attack_recall", 0.0) > 0.0 and rce + envelope == 0:
        failures.append("gate: attack recall is nonzero but both "
                        "attribution counters are 0 — per-test attribution "
                        "broke")
    else:
        print(f"check_bench: gate attribution flagged_rce={rce} "
              f"flagged_envelope={envelope}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="build", type=pathlib.Path,
                        help="directory with the smoke-run BENCH_*.json")
    parser.add_argument("--baselines", default="bench/baselines",
                        type=pathlib.Path,
                        help="directory with committed baselines")
    parser.add_argument("--threshold", default=0.30, type=float,
                        help="allowed fractional qps regression (0.30 = 30%%)")
    parser.add_argument("--min-simd-speedup", default=1.5, type=float,
                        help="AVX2-vs-scalar floor on cache-busting shapes")
    parser.add_argument("--tail-threshold", default=0.75, type=float,
                        help="allowed fractional p99 latency growth per cell "
                             "(0.75 = +75%%)")
    parser.add_argument("--min-remote-ratio", default=0.15, type=float,
                        help="floor on remote-cell qps as a fraction of the "
                             "matching local hash-routed cell's qps")
    parser.add_argument("--update", action="store_true",
                        help="refresh baselines from the current run instead "
                             "of checking")
    args = parser.parse_args()

    if args.update:
        args.baselines.mkdir(parents=True, exist_ok=True)
        for name in (SERVE, ROUTE, GATE):
            src = args.current / name
            if not src.exists():
                sys.exit(f"check_bench --update: {src} missing; run the "
                         "smoke benches first")
            shutil.copyfile(src, args.baselines / name)
            print(f"check_bench: baseline refreshed from {src}")
        return

    failures: list[str] = []

    serve_base = load(args.baselines / SERVE)
    serve_cur = load(args.current / SERVE)
    if serve_base.get("schema") != serve_cur.get("schema"):
        failures.append(
            f"serve: schema drift — baseline {serve_base.get('schema')} vs "
            f"current {serve_cur.get('schema')}; refresh baselines")
    else:
        check_qps("serve", serve_base.get("cells", []),
                  serve_cur.get("cells", []), ("workers", "batch"),
                  args.threshold, failures)
        check_tail("serve", serve_base.get("cells", []),
                   serve_cur.get("cells", []), ("workers", "batch"),
                   args.tail_threshold, failures)
        check_stages("serve", serve_cur.get("cells", []),
                     ("workers", "batch"), failures)
        check_dispatch(serve_base, serve_cur, failures)
        check_simd_speedup(serve_cur, args.min_simd_speedup, failures)

    route_base = load(args.baselines / ROUTE)
    route_cur = load(args.current / ROUTE)
    if route_base.get("schema") != route_cur.get("schema"):
        failures.append(
            f"route: schema drift — baseline {route_base.get('schema')} vs "
            f"current {route_cur.get('schema')}; refresh baselines")
    else:
        check_qps("route", route_base.get("cells", []),
                  route_cur.get("cells", []),
                  ("mix", "router", "shards", "transport"),
                  args.threshold, failures)
        check_tail("route", route_base.get("cells", []),
                   route_cur.get("cells", []),
                   ("mix", "router", "shards", "transport"),
                   args.tail_threshold, failures)
        check_stages("route", route_cur.get("cells", []),
                     ("mix", "router", "shards", "transport"), failures)
        check_route_partition(route_cur, failures)
        check_remote_ratio(route_cur, args.min_remote_ratio, failures)

    gate_base = load(args.baselines / GATE)
    gate_cur = load(args.current / GATE)
    if gate_base.get("schema") != gate_cur.get("schema"):
        failures.append(
            f"gate: schema drift — baseline {gate_base.get('schema')} vs "
            f"current {gate_cur.get('schema')}; refresh baselines")
    else:
        check_gate(gate_base, gate_cur, failures)

    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        sys.exit(1)
    print("check_bench: all bench gates passed")


if __name__ == "__main__":
    main()
