// Fig. 6: SAFELOC vs. five state-of-the-art frameworks under every attack.
//
// For each framework and each scenario (clean + CLB/FGSM/PGD/MIM backdoors
// at ε=0.5 + full label flipping), reports best/mean/worst localization
// error pooled across buildings — the paper's box-and-whisker content — and
// SAFELOC's improvement factors. Also surfaces each filtering framework's
// attacker-exclusion precision/recall from the engine diagnostics.
//
// Paper reference: SAFELOC achieves 1.2-2.11x lower mean error (label flip)
// and 1.33-5.9x (backdoors); ONLAD ranks second; FEDLOC is worst.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 6: comparison with the state of the art");

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"clean", bench::make_attack(attack::AttackKind::kNone, 0.0)},
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"CLB", bench::make_attack(attack::AttackKind::kCleanLabelBackdoor, 0.5)},
      {"FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
      {"PGD", bench::make_attack(attack::AttackKind::kPgd, 0.5)},
      {"MIM", bench::make_attack(attack::AttackKind::kMim, 0.5)},
  };
  const std::vector<std::string> frameworks = {"SAFELOC", "ONLAD", "FEDHIL",
                                               "FEDCC",   "FEDLS", "FEDLOC"};

  engine::ScenarioGrid grid;
  grid.frameworks(frameworks)
      .buildings(bench::bench_buildings())
      .attacks(scenarios);
  const engine::RunReport report = bench::run_grid(grid, "fig6");
  const auto pooled = bench::pool_by_framework_and_attack(report);

  util::CsvWriter csv("fig6.csv");
  csv.write_row({"framework", "scenario", "best_m", "mean_m", "worst_m"});
  util::AsciiTable table(
      {"scenario", "framework", "best (m)", "mean (m)", "worst (m)",
       "SAFELOC mean adv.", "SAFELOC worst adv."});
  for (const auto& [label, _] : scenarios) {
    const auto safeloc_stats = eval::error_stats(pooled.at("SAFELOC").at(label));
    for (const std::string& name : frameworks) {
      const auto stats = eval::error_stats(pooled.at(name).at(label));
      csv.write_row({name, label, util::CsvWriter::cell(stats.best_m),
                     util::CsvWriter::cell(stats.mean_m),
                     util::CsvWriter::cell(stats.worst_m)});
      std::string mean_adv = "-";
      std::string worst_adv = "-";
      if (name != "SAFELOC" && safeloc_stats.mean_m > 0.0) {
        mean_adv =
            util::AsciiTable::num(stats.mean_m / safeloc_stats.mean_m, 2) + "x";
        worst_adv =
            util::AsciiTable::num(stats.worst_m /
                                      std::max(safeloc_stats.worst_m, 1e-9),
                                  2) + "x";
      }
      table.add_row({label, name, util::AsciiTable::num(stats.best_m),
                     util::AsciiTable::num(stats.mean_m),
                     util::AsciiTable::num(stats.worst_m), mean_adv,
                     worst_adv});
    }
  }
  std::printf("%s", table.render().c_str());

  // Exclusion quality of the filtering frameworks under attack (pooled over
  // buildings and attack scenarios).
  util::AsciiTable excl({"framework", "excl. precision", "excl. recall"});
  for (const std::string& name : frameworks) {
    engine::ExclusionStats pooled_excl;
    bool filtering = false;
    for (const engine::CellResult& cell : report.cells) {
      if (cell.spec.framework != name) continue;
      if (cell.spec.attack.kind == attack::AttackKind::kNone) continue;
      pooled_excl.true_positives += cell.exclusion.true_positives;
      pooled_excl.false_positives += cell.exclusion.false_positives;
      pooled_excl.false_negatives += cell.exclusion.false_negatives;
      for (const auto& round : cell.fl.rounds) {
        filtering |= !round.clients_excluded.empty();
      }
    }
    if (!filtering) continue;
    excl.add_row({name, util::AsciiTable::num(pooled_excl.precision(), 2),
                  util::AsciiTable::num(pooled_excl.recall(), 2)});
  }
  std::printf("\nattacker-exclusion quality (filtering frameworks):\n%s",
              excl.render().c_str());
  std::printf(
      "series written to fig6.csv + BENCH_fig6.json; paper: SAFELOC 1.2-2.11x "
      "lower mean error (label flip), 1.33-5.9x (backdoors); ONLAD "
      "second-best overall\n");
  return 0;
}
