// Fig. 6: SAFELOC vs. five state-of-the-art frameworks under every attack.
//
// For each framework and each scenario (clean + CLB/FGSM/PGD/MIM backdoors
// at ε=0.5 + full label flipping), reports best/mean/worst localization
// error pooled across buildings — the paper's box-and-whisker content — and
// SAFELOC's improvement factors.
//
// Paper reference: SAFELOC achieves 1.2-2.11x lower mean error (label flip)
// and 1.33-5.9x (backdoors); ONLAD ranks second; FEDLOC is worst.
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/frameworks.h"
#include "src/eval/experiment.h"
#include "src/util/csv.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 6: comparison with the state of the art");
  const util::RunScale& scale = util::run_scale();

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"clean", bench::make_attack(attack::AttackKind::kNone, 0.0)},
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"CLB", bench::make_attack(attack::AttackKind::kCleanLabelBackdoor, 0.5)},
      {"FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
      {"PGD", bench::make_attack(attack::AttackKind::kPgd, 0.5)},
      {"MIM", bench::make_attack(attack::AttackKind::kMim, 0.5)},
  };

  // framework -> scenario -> pooled errors.
  std::map<std::string, std::map<std::string, std::vector<double>>> pooled;

  for (const int building : bench::bench_buildings()) {
    const eval::Experiment experiment(building);
    for (const auto id : baselines::all_frameworks()) {
      auto framework = baselines::make_framework(id);
      experiment.pretrain(*framework, scale.server_epochs);
      for (const auto& [label, attack_config] : scenarios) {
        const auto outcome =
            experiment.run_attack(*framework, attack_config, scale.fl_rounds);
        auto& sink = pooled[framework->name()][label];
        sink.insert(sink.end(), outcome.errors_m.begin(),
                    outcome.errors_m.end());
      }
    }
  }

  util::CsvWriter csv("fig6.csv");
  csv.write_row({"framework", "scenario", "best_m", "mean_m", "worst_m"});
  util::AsciiTable table(
      {"scenario", "framework", "best (m)", "mean (m)", "worst (m)",
       "SAFELOC mean adv.", "SAFELOC worst adv."});
  for (const auto& [label, _] : scenarios) {
    const auto safeloc_stats = eval::error_stats(pooled.at("SAFELOC").at(label));
    for (const auto id : baselines::all_frameworks()) {
      const std::string name = baselines::to_string(id);
      const auto stats = eval::error_stats(pooled.at(name).at(label));
      csv.write_row({name, label, util::CsvWriter::cell(stats.best_m),
                     util::CsvWriter::cell(stats.mean_m),
                     util::CsvWriter::cell(stats.worst_m)});
      std::string mean_adv = "-";
      std::string worst_adv = "-";
      if (name != "SAFELOC" && safeloc_stats.mean_m > 0.0) {
        mean_adv =
            util::AsciiTable::num(stats.mean_m / safeloc_stats.mean_m, 2) + "x";
        worst_adv =
            util::AsciiTable::num(stats.worst_m /
                                      std::max(safeloc_stats.worst_m, 1e-9),
                                  2) + "x";
      }
      table.add_row({label, name, util::AsciiTable::num(stats.best_m),
                     util::AsciiTable::num(stats.mean_m),
                     util::AsciiTable::num(stats.worst_m), mean_adv,
                     worst_adv});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "series written to fig6.csv; paper: SAFELOC 1.2-2.11x lower mean error "
      "(label flip), 1.33-5.9x (backdoors); ONLAD second-best overall\n");
  return 0;
}
