// Fig. 1: motivation — localization error of the undefended / partially
// defended baselines FEDLOC and FEDHIL under label-flipping and backdoor
// (FGSM) poisoning, as best/mean/worst error bars aggregated across
// buildings.
//
// Paper reference points: under label flipping FEDLOC's mean error rises
// ~3.5x and FEDHIL's ~3.9x over clean; under backdoor attacks FEDLOC rises
// ~6.5x and FEDHIL ~3.25x.
#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 1: baseline degradation under poisoning");

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"clean", bench::make_attack(attack::AttackKind::kNone, 0.0)},
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"backdoor-FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
  };

  engine::ScenarioGrid grid;
  grid.frameworks({"FEDLOC", "FEDHIL"})
      .buildings(bench::bench_buildings())
      .attacks(scenarios)
      .repeats();  // run_scale().repeats seeds per cell (3 at paper scale)
  const engine::RunReport report = bench::run_grid(grid, "fig1");
  const auto pooled = bench::pool_by_framework_and_attack(report);

  util::AsciiTable table({"framework", "scenario", "best (m)", "mean (m)",
                          "worst (m)", "mean vs clean"});
  util::CsvWriter csv("fig1.csv");
  csv.write_row({"framework", "scenario", "best_m", "mean_m", "worst_m"});
  for (const auto& [framework, by_scenario] : pooled) {
    const double clean_mean =
        eval::error_stats(by_scenario.at("clean")).mean_m;
    for (const auto& [label, _] : scenarios) {
      const auto stats = eval::error_stats(by_scenario.at(label));
      table.add_row({framework, label, util::AsciiTable::num(stats.best_m),
                     util::AsciiTable::num(stats.mean_m),
                     util::AsciiTable::num(stats.worst_m),
                     util::AsciiTable::num(stats.mean_m / clean_mean, 2) + "x"});
      csv.write_row({framework, label, util::CsvWriter::cell(stats.best_m),
                     util::CsvWriter::cell(stats.mean_m),
                     util::CsvWriter::cell(stats.worst_m)});
    }
  }
  std::printf("%s", table.render().c_str());

  // Multi-seed runs: per-cell mean ± std across the repeats axis.
  if (util::run_scale().repeats > 1) {
    util::AsciiTable spread({"framework", "building", "scenario", "mean (m)",
                             "std (m)", "seeds"});
    for (const engine::RepeatSummary& summary : report.repeat_summaries()) {
      spread.add_row({summary.spec.framework,
                      std::to_string(summary.spec.building),
                      summary.spec.resolved_attack_label(),
                      util::AsciiTable::num(summary.mean_m),
                      util::AsciiTable::num(summary.std_m),
                      std::to_string(summary.repeats)});
    }
    std::printf("seed spread (repeats axis):\n%s", spread.render().c_str());
  }
  std::printf("series written to fig1.csv + BENCH_fig1.json; paper: "
              "label-flip ~3.5x (FEDLOC) / ~3.9x (FEDHIL), backdoor ~6.5x "
              "(FEDLOC) / ~3.25x (FEDHIL)\n");
  return 0;
}
