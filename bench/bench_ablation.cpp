// Ablation bench (not a paper figure): isolates the contribution of each
// SAFELOC design choice that DESIGN.md calls out.
//
//   * saliency aggregation mode: convex (default) vs scaled-literal Eq. 8
//     vs paper-literal Eq. 9 (demonstrates the divergence of the literal
//     rule) vs plain FedAvg (saliency off)
//   * detector off (τ = ∞: no RCE gating / de-noising)
//   * strictly tied decoder vs mirrored-warm-start decoder
//   * encoder frozen vs unfrozen w.r.t. the reconstruction loss
//   * decoder freshness: the client recon anchor (client_recon_weight,
//     gradient stopped at the bottleneck) and the server-side decoder
//     refresh, separately and together, plus an anchor-weight sweep via
//     the ScenarioGrid::client_recon_weights axis — the accuracy / RCE
//     trade-off behind the serve-time RCE test's post-rounds power.
//
// Each variant faces a label-flip and an FGSM scenario on Building 2; the
// engine runs with capture_final_gm so every cell also reports the
// post-rounds clean-RCE p99 of the model it would publish (refresh
// variants capture the refreshed decoder; others the raw post-rounds one).
// Variants differ in FrameworkOptions, so each is its own pretrain group
// and the engine runs them concurrently.
#include <cmath>
#include <limits>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

struct Variant {
  std::string label;
  core::SafeLocConfig config;
};

std::vector<Variant> make_variants() {
  std::vector<Variant> variants;

  core::SafeLocConfig base;
  variants.push_back({"full SAFELOC (convex saliency)", base});

  core::SafeLocConfig scaled = base;
  scaled.saliency.mode = fl::SaliencyMode::kScaledLiteral;
  variants.push_back({"Eq.8 literal (S*W_LM, blended)", scaled});

  core::SafeLocConfig literal = base;
  literal.saliency.mode = fl::SaliencyMode::kPaperLiteral;
  variants.push_back({"Eq.9 literal (GM + W_adj)", literal});

  core::SafeLocConfig no_saliency = base;
  no_saliency.saliency.beta = 0.0;  // S == 1 for every weight -> plain blend
  variants.push_back({"saliency off (uniform blend)", no_saliency});

  core::SafeLocConfig no_detector = base;
  no_detector.tau = std::numeric_limits<double>::infinity();
  variants.push_back({"detector off (tau = inf)", no_detector});

  core::SafeLocConfig tied = base;
  tied.tied_decoder = true;
  variants.push_back({"strictly tied decoder", tied});

  core::SafeLocConfig frozen = base;
  frozen.freeze_encoder_on_recon = true;
  variants.push_back({"encoder frozen on recon (paper literal)", frozen});

  // --- decoder-freshness ablation ---------------------------------------
  // Legacy objective: classification-only clients AND no refresh — the
  // pre-fix configuration whose clean-RCE floor drifts above 1.
  core::SafeLocConfig legacy = base;
  legacy.client_recon_weight = 0.0;
  legacy.decoder_refresh_epochs = 0;
  variants.push_back({"stale decoder (no anchor, no refresh)", legacy});

  core::SafeLocConfig anchor_only = base;
  anchor_only.decoder_refresh_epochs = 0;
  variants.push_back({"client recon anchor only (refresh off)", anchor_only});

  core::SafeLocConfig refresh_only = base;
  refresh_only.client_recon_weight = 0.0;
  variants.push_back({"decoder refresh only (anchor off)", refresh_only});

  core::SafeLocConfig unfrozen_anchor = base;
  unfrozen_anchor.decoder_refresh_epochs = 0;
  unfrozen_anchor.client_freeze_encoder = false;
  variants.push_back(
      {"anchor w/ unfrozen encoder (latent drifts)", unfrozen_anchor});

  return variants;
}

}  // namespace

int main() {
  bench::print_scale_banner("Ablation: SAFELOC design choices");

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
  };
  const std::vector<Variant> variants = make_variants();

  // Hand-built cell list: the variant axis lives in FrameworkOptions, which
  // ScenarioGrid does not enumerate. spec.label carries the variant name.
  std::vector<engine::ScenarioSpec> cells;
  std::vector<std::string> labels;
  for (const Variant& variant : variants) {
    for (const auto& [label, attack_config] : scenarios) {
      engine::ScenarioSpec spec;
      spec.framework = "SAFELOC";
      spec.building = 2;
      spec.options.safeloc = variant.config;
      spec.attack = attack_config;
      spec.attack_label = label;
      cells.push_back(std::move(spec));
      labels.push_back(variant.label);
    }
  }

  // Anchor-weight sweep (accuracy / post-rounds RCE trade-off), refresh off
  // so the captured clean-RCE p99 shows the anchor's effect in isolation.
  // Exercises the client_recon_weights grid axis.
  engine::ScenarioGrid anchor_grid;
  anchor_grid.base().framework = "SAFELOC";
  anchor_grid.base().building = 2;
  anchor_grid.base().options.safeloc.decoder_refresh_epochs = 0;
  anchor_grid.base().attack = scenarios[1].second;  // FGSM
  anchor_grid.base().attack_label = scenarios[1].first;
  const std::vector<double> anchor_weights = {0.0, 0.05, 0.1, 0.5, 1.0};
  anchor_grid.client_recon_weights(anchor_weights);
  for (const engine::ScenarioSpec& spec : anchor_grid.expand()) {
    char label[64];
    std::snprintf(label, sizeof(label), "anchor weight sweep w=%g",
                  spec.options.safeloc.client_recon_weight);
    cells.push_back(spec);
    labels.push_back(label);
  }

  const engine::ScenarioEngine eng;
  const engine::RunReport report = eng.run(
      cells, engine::default_thread_count(), /*capture_final_gm=*/true);
  report.write_json("BENCH_ablation.json");

  util::CsvWriter csv("ablation.csv");
  csv.write_row(
      {"variant", "scenario", "mean_m", "worst_m", "clean_rce_p99"});
  util::AsciiTable table(
      {"variant", "scenario", "mean (m)", "worst (m)", "clean RCE p99"});

  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const engine::CellResult& cell = report.cells[i];
    const std::string& variant_label = labels[i];
    const double worst =
        std::isfinite(cell.stats.worst_m) ? cell.stats.worst_m : -1.0;
    const double rce_p99 = cell.calibration.has_rce
                               ? static_cast<double>(cell.calibration.rce_p99)
                               : -1.0;
    table.add_row({variant_label, cell.spec.attack_label,
                   util::AsciiTable::num(cell.stats.mean_m),
                   util::AsciiTable::num(worst),
                   util::AsciiTable::num(rce_p99, 4)});
    csv.write_row({variant_label, cell.spec.attack_label,
                   util::CsvWriter::cell(cell.stats.mean_m),
                   util::CsvWriter::cell(worst),
                   util::CsvWriter::cell(rce_p99)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "series written to ablation.csv + BENCH_ablation.json; expectation: "
      "convex saliency defends label flips, detector off leaves backdoors "
      "unmitigated at the client, Eq.9-literal diverges, and the "
      "decoder-freshness rows show the stale-decoder clean-RCE p99 (>1) "
      "falling back to the pretrained floor under the recon anchor and/or "
      "decoder refresh with localization accuracy unchanged\n");
  return 0;
}
