// Ablation bench (not a paper figure): isolates the contribution of each
// SAFELOC design choice that DESIGN.md calls out.
//
//   * saliency aggregation mode: convex (default) vs scaled-literal Eq. 8
//     vs paper-literal Eq. 9 (demonstrates the divergence of the literal
//     rule) vs plain FedAvg (saliency off)
//   * detector off (τ = ∞: no RCE gating / de-noising)
//   * strictly tied decoder vs mirrored-warm-start decoder
//   * encoder frozen vs unfrozen w.r.t. the reconstruction loss
//
// Each variant faces a label-flip and an FGSM scenario on Building 2.
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "bench/bench_common.h"
#include "src/core/safeloc.h"
#include "src/eval/experiment.h"
#include "src/util/csv.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

struct Variant {
  std::string label;
  core::SafeLocConfig config;
};

std::vector<Variant> make_variants() {
  std::vector<Variant> variants;

  core::SafeLocConfig base;
  variants.push_back({"full SAFELOC (convex saliency)", base});

  core::SafeLocConfig scaled = base;
  scaled.saliency.mode = fl::SaliencyMode::kScaledLiteral;
  variants.push_back({"Eq.8 literal (S*W_LM, blended)", scaled});

  core::SafeLocConfig literal = base;
  literal.saliency.mode = fl::SaliencyMode::kPaperLiteral;
  variants.push_back({"Eq.9 literal (GM + W_adj)", literal});

  core::SafeLocConfig no_saliency = base;
  no_saliency.saliency.beta = 0.0;  // S == 1 for every weight -> plain blend
  variants.push_back({"saliency off (uniform blend)", no_saliency});

  core::SafeLocConfig no_detector = base;
  no_detector.tau = std::numeric_limits<double>::infinity();
  variants.push_back({"detector off (tau = inf)", no_detector});

  core::SafeLocConfig tied = base;
  tied.tied_decoder = true;
  variants.push_back({"strictly tied decoder", tied});

  core::SafeLocConfig frozen = base;
  frozen.freeze_encoder_on_recon = true;
  variants.push_back({"encoder frozen on recon (paper literal)", frozen});

  return variants;
}

}  // namespace

int main() {
  bench::print_scale_banner("Ablation: SAFELOC design choices");
  const util::RunScale& scale = util::run_scale();
  const int building = 2;

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
  };

  const eval::Experiment experiment(building);
  util::CsvWriter csv("ablation.csv");
  csv.write_row({"variant", "scenario", "mean_m", "worst_m", "params"});
  util::AsciiTable table({"variant", "scenario", "mean (m)", "worst (m)",
                          "params"});

  for (const auto& variant : make_variants()) {
    core::SafeLocFramework framework(variant.config);
    experiment.pretrain(framework, scale.server_epochs);
    for (const auto& [label, attack_config] : scenarios) {
      const auto outcome =
          experiment.run_attack(framework, attack_config, scale.fl_rounds);
      const double worst =
          std::isfinite(outcome.stats.worst_m) ? outcome.stats.worst_m : -1.0;
      table.add_row({variant.label, label,
                     util::AsciiTable::num(outcome.stats.mean_m),
                     util::AsciiTable::num(worst),
                     std::to_string(framework.parameter_count())});
      csv.write_row({variant.label, label,
                     util::CsvWriter::cell(outcome.stats.mean_m),
                     util::CsvWriter::cell(worst),
                     util::CsvWriter::cell(framework.parameter_count())});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("series written to ablation.csv; expectation: convex saliency "
              "defends label flips, detector off leaves backdoors "
              "unmitigated at the client, Eq.9-literal diverges\n");
  return 0;
}
