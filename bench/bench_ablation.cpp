// Ablation bench (not a paper figure): isolates the contribution of each
// SAFELOC design choice that DESIGN.md calls out.
//
//   * saliency aggregation mode: convex (default) vs scaled-literal Eq. 8
//     vs paper-literal Eq. 9 (demonstrates the divergence of the literal
//     rule) vs plain FedAvg (saliency off)
//   * detector off (τ = ∞: no RCE gating / de-noising)
//   * strictly tied decoder vs mirrored-warm-start decoder
//   * encoder frozen vs unfrozen w.r.t. the reconstruction loss
//
// Each variant faces a label-flip and an FGSM scenario on Building 2.
// Variants differ in FrameworkOptions, so each is its own pretrain group
// and the engine runs them concurrently.
#include <cmath>
#include <limits>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

struct Variant {
  std::string label;
  core::SafeLocConfig config;
};

std::vector<Variant> make_variants() {
  std::vector<Variant> variants;

  core::SafeLocConfig base;
  variants.push_back({"full SAFELOC (convex saliency)", base});

  core::SafeLocConfig scaled = base;
  scaled.saliency.mode = fl::SaliencyMode::kScaledLiteral;
  variants.push_back({"Eq.8 literal (S*W_LM, blended)", scaled});

  core::SafeLocConfig literal = base;
  literal.saliency.mode = fl::SaliencyMode::kPaperLiteral;
  variants.push_back({"Eq.9 literal (GM + W_adj)", literal});

  core::SafeLocConfig no_saliency = base;
  no_saliency.saliency.beta = 0.0;  // S == 1 for every weight -> plain blend
  variants.push_back({"saliency off (uniform blend)", no_saliency});

  core::SafeLocConfig no_detector = base;
  no_detector.tau = std::numeric_limits<double>::infinity();
  variants.push_back({"detector off (tau = inf)", no_detector});

  core::SafeLocConfig tied = base;
  tied.tied_decoder = true;
  variants.push_back({"strictly tied decoder", tied});

  core::SafeLocConfig frozen = base;
  frozen.freeze_encoder_on_recon = true;
  variants.push_back({"encoder frozen on recon (paper literal)", frozen});

  return variants;
}

}  // namespace

int main() {
  bench::print_scale_banner("Ablation: SAFELOC design choices");

  const std::vector<std::pair<std::string, attack::AttackConfig>> scenarios = {
      {"label-flip", bench::make_attack(attack::AttackKind::kLabelFlip, 1.0)},
      {"FGSM", bench::make_attack(attack::AttackKind::kFgsm, 0.5)},
  };
  const std::vector<Variant> variants = make_variants();

  // Hand-built cell list: the variant axis lives in FrameworkOptions, which
  // ScenarioGrid does not enumerate. spec.label carries the variant name.
  std::vector<engine::ScenarioSpec> cells;
  for (const Variant& variant : variants) {
    for (const auto& [label, attack_config] : scenarios) {
      engine::ScenarioSpec spec;
      spec.framework = "SAFELOC";
      spec.building = 2;
      spec.options.safeloc = variant.config;
      spec.attack = attack_config;
      spec.attack_label = label;
      cells.push_back(std::move(spec));
    }
  }

  const engine::ScenarioEngine eng;
  const engine::RunReport report =
      eng.run(cells, engine::default_thread_count());
  report.write_json("BENCH_ablation.json");

  util::CsvWriter csv("ablation.csv");
  csv.write_row({"variant", "scenario", "mean_m", "worst_m"});
  util::AsciiTable table({"variant", "scenario", "mean (m)", "worst (m)"});

  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const engine::CellResult& cell = report.cells[i];
    const std::string& variant_label = variants[i / scenarios.size()].label;
    const double worst =
        std::isfinite(cell.stats.worst_m) ? cell.stats.worst_m : -1.0;
    table.add_row({variant_label, cell.spec.attack_label,
                   util::AsciiTable::num(cell.stats.mean_m),
                   util::AsciiTable::num(worst)});
    csv.write_row({variant_label, cell.spec.attack_label,
                   util::CsvWriter::cell(cell.stats.mean_m),
                   util::CsvWriter::cell(worst)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("series written to ablation.csv + BENCH_ablation.json; "
              "expectation: convex saliency defends label flips, detector "
              "off leaves backdoors unmitigated at the client, Eq.9-literal "
              "diverges\n");
  return 0;
}
