// Fig. 4: impact of the reconstruction threshold τ on SAFELOC's mean
// localization error, per building.
//
// For every τ in the sweep, SAFELOC (with that τ) faces the full attack mix
// mounted by the HTC U11 client, and the mean error across devices/attacks
// is recorded — one series per building, as in the paper's figure.
//
// τ is an inference-time knob, so the engine reuses one pretrained snapshot
// per building across the whole τ × attack sub-grid (ScenarioSpec::tau).
//
// Paper reference: lowest mean error at τ = 0.1; stable plateau for
// τ = 0.15..0.25; errors grow past τ = 0.3 and peak at τ = 0.45..0.5 (more
// poison admitted into the GM).
#include <map>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 4: reconstruction-threshold sweep");
  const util::RunScale& scale = util::run_scale();

  const std::vector<double> taus = {0.05, 0.1, 0.15, 0.2,  0.25,
                                    0.3,  0.35, 0.4, 0.45, 0.5};
  // Attack mix: representative strengths spanning the paper's 0..1 ε range
  // (the paper varies ε inside each cell). The fast profile keeps one
  // backdoor per regime plus label flipping; SAFELOC_FAST=0 runs all five.
  std::vector<attack::AttackConfig> attack_mix = {
      bench::make_attack(attack::AttackKind::kFgsm, 0.2),
      bench::make_attack(attack::AttackKind::kMim, 0.6),
      bench::make_attack(attack::AttackKind::kLabelFlip, 1.0),
  };
  if (!scale.fast) {
    attack_mix.push_back(
        bench::make_attack(attack::AttackKind::kCleanLabelBackdoor, 0.3));
    attack_mix.push_back(bench::make_attack(attack::AttackKind::kPgd, 0.4));
  }

  const auto buildings = bench::bench_buildings();
  engine::ScenarioGrid grid;
  grid.base().framework = "SAFELOC";
  grid.buildings(buildings).taus(taus).attacks(attack_mix);
  const engine::RunReport report = bench::run_grid(grid, "fig4");

  // (building, tau) -> errors pooled over the attack mix.
  std::map<std::pair<int, double>, util::RunningStats> pooled;
  for (const engine::CellResult& cell : report.cells) {
    auto& stats = pooled[{cell.spec.building, cell.spec.tau}];
    for (const double e : cell.errors_m) stats.add(e);
  }

  util::CsvWriter csv("fig4.csv");
  csv.write_row({"building", "tau", "mean_error_m"});
  std::vector<std::string> header = {"tau"};
  for (const int b : buildings) header.push_back("bldg " + std::to_string(b));
  util::AsciiTable table(std::move(header));

  for (const double tau : taus) {
    std::vector<std::string> row = {util::AsciiTable::num(tau)};
    for (const int building : buildings) {
      const double mean = pooled.at({building, tau}).mean();
      row.push_back(util::AsciiTable::num(mean));
      csv.write_row({util::CsvWriter::cell(static_cast<double>(building)),
                     util::CsvWriter::cell(tau),
                     util::CsvWriter::cell(mean)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("series written to fig4.csv + BENCH_fig4.json; paper: optimum "
              "at tau = 0.1, plateau to 0.25, errors rise past 0.3\n");
  return 0;
}
