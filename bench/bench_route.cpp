// Routing/sharding bench: LocalizationService throughput across
// (shards x router policy x traffic mix), against device-realistic Poisson
// traffic — the scaling story on top of bench_serve's single-engine numbers.
//
// Pipeline: train one SAFELOC model per building through the ScenarioEngine
// (capture_final_gm so records carry serving calibration), publish them to
// the service, then for every grid cell replay a pre-materialized traffic
// stream closed-loop through submit() and measure queries/sec, p50/p99
// latency, per-shard placement, and — for the adversarial mix — PoisonGate
// flag counts. Each shard runs a single-worker QueryEngine, so the shards
// axis maps 1:1 onto cores on real hardware.
//
// Traffic mixes:
//   single        building 1 only
//   mixed         uniform over buildings {1, 2}
//   mixed_attack  mixed + a whole-stream evasion window (20% of queries at
//                 eps = 0.3) with a PoisonGate on the admission chain
//
// Knobs:
//   SAFELOC_SERVE_SMOKE=1 (or --smoke)  tiny grid for CI
//   SAFELOC_ROUTE_QUERIES=<n>           queries per grid cell
//   SAFELOC_EPOCHS                      training budget (model quality is
//                                       irrelevant to routing throughput)
//
// Writes BENCH_route.json ("safeloc.route_bench/v1").
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/serve/admission.h"
#include "src/serve/model_store.h"
#include "src/serve/router.h"
#include "src/serve/service.h"
#include "src/serve/traffic.h"
#include "src/util/config.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

struct TrafficMix {
  std::string name;
  std::vector<int> buildings;
  double attack_fraction = 0.0;
  bool gate = false;
};

struct CellMeasurement {
  int shards = 0;
  std::string router;
  std::string mix;
  std::size_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// max routed share / mean routed share (1.0 = perfectly even).
  double imbalance = 1.0;
  std::uint64_t flagged = 0;
  std::size_t poisoned = 0;
};

CellMeasurement run_cell(const serve::ModelStore& store,
                         const std::vector<serve::TimedQuery>& stream,
                         int shards, const std::string& router,
                         const TrafficMix& mix) {
  serve::ServiceConfig config;
  config.shards = shards;
  config.engine.workers = 1;  // the shards axis IS the parallelism axis
  config.engine.max_batch = 64;
  config.engine.batch_window = std::chrono::microseconds(100);
  config.engine.queue_capacity = std::max<std::size_t>(
      static_cast<std::size_t>(shards) * config.engine.max_batch * 2, 256);
  serve::LocalizationService service(config);
  service.set_router(serve::make_router(router));
  if (mix.gate) service.add_admission(std::make_unique<serve::PoisonGate>());
  service.publish_latest(store);

  std::vector<double> latencies_us(stream.size(), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Closed loop: the routed shard's bounded queue applies backpressure.
    service.submit({stream[i].building, stream[i].x},
                   [&latencies_us, i](serve::Response response) {
                     latencies_us[i] = response.query.latency_us;
                   });
  }
  service.drain();
  const auto t1 = std::chrono::steady_clock::now();

  CellMeasurement cell;
  cell.shards = shards;
  cell.router = router;
  cell.mix = mix.name;
  cell.queries = stream.size();
  cell.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cell.qps = static_cast<double>(stream.size()) / cell.wall_s;
  cell.p50_us = util::percentile(latencies_us, 50.0);
  cell.p99_us = util::percentile(latencies_us, 99.0);
  const serve::LocalizationService::Stats stats = service.stats();
  std::uint64_t max_routed = 0, total_routed = 0;
  for (const std::uint64_t r : stats.routed) {
    max_routed = std::max(max_routed, r);
    total_routed += r;
  }
  if (total_routed > 0) {
    const double mean_share = static_cast<double>(total_routed) /
                              static_cast<double>(stats.routed.size());
    cell.imbalance = static_cast<double>(max_routed) / mean_share;
  }
  cell.flagged = stats.flagged;
  for (const serve::TimedQuery& query : stream) {
    cell.poisoned += query.poisoned ? 1 : 0;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = util::env_int_strict("SAFELOC_SERVE_SMOKE", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<int> shard_axis =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<std::string> router_axis = {"hash", "round_robin",
                                                "least_loaded"};
  const std::vector<TrafficMix> mixes = {
      {"single", {1}, 0.0, false},
      {"mixed", {1, 2}, 0.0, false},
      {"mixed_attack", {1, 2}, 0.2, true},
  };
  const std::size_t queries_per_cell = static_cast<std::size_t>(
      util::env_int_strict("SAFELOC_ROUTE_QUERIES", smoke ? 10'000 : 100'000));

  // One benign SAFELOC deployment per building, calibration captured for
  // the adversarial mix's PoisonGate.
  engine::ScenarioGrid grid;
  grid.base().framework = "SAFELOC";
  grid.base().rounds = 0;
  grid.base().server_epochs = util::env_int_strict("SAFELOC_EPOCHS", smoke ? 2 : 8);
  grid.buildings({1, 2});
  std::printf("bench_route — training SAFELOC on buildings 1+2 (%d epochs)...\n",
              grid.base().server_epochs);
  const engine::RunReport trained = engine::ScenarioEngine{}.run(
      grid, engine::default_thread_count(), /*capture_final_gm=*/true);
  serve::ModelStore store;
  store.publish_run(trained);

  // Pre-materialize one stream per mix, shared by every (shards, router)
  // cell of that mix so the comparison is apples-to-apples.
  std::vector<std::vector<serve::TimedQuery>> streams;
  for (const TrafficMix& mix : mixes) {
    serve::TrafficConfig traffic_config;
    traffic_config.buildings = mix.buildings;
    traffic_config.mean_qps = 200'000.0;
    traffic_config.attack_fraction = mix.attack_fraction;
    traffic_config.attack_epsilon = 0.3;
    streams.push_back(
        serve::TrafficGenerator(traffic_config).generate(queries_per_cell));
  }
  std::printf("replaying %zu queries per cell over a %zu-cell grid on %u "
              "core(s)%s\n",
              queries_per_cell,
              shard_axis.size() * router_axis.size() * mixes.size(),
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "");

  util::AsciiTable table({"mix", "router", "shards", "queries/s", "p50 (us)",
                          "p99 (us)", "imbalance", "flagged"});
  std::vector<CellMeasurement> cells;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (const std::string& router : router_axis) {
      for (const int shards : shard_axis) {
        const CellMeasurement cell =
            run_cell(store, streams[m], shards, router, mixes[m]);
        cells.push_back(cell);
        table.add_row({cell.mix, cell.router, std::to_string(cell.shards),
                       util::AsciiTable::num(cell.qps, 0),
                       util::AsciiTable::num(cell.p50_us, 1),
                       util::AsciiTable::num(cell.p99_us, 1),
                       util::AsciiTable::num(cell.imbalance, 2),
                       std::to_string(cell.flagged)});
      }
    }
  }
  std::printf("%s", table.render().c_str());

  // Scaling summary: best speedup of the widest fleet over one shard.
  const int max_shards = shard_axis.back();
  double best_speedup = 0.0;
  std::string best_label;
  for (const CellMeasurement& wide : cells) {
    if (wide.shards != max_shards) continue;
    for (const CellMeasurement& one : cells) {
      if (one.shards == 1 && one.router == wide.router && one.mix == wide.mix &&
          one.qps > 0.0 && wide.qps / one.qps > best_speedup) {
        best_speedup = wide.qps / one.qps;
        best_label = wide.mix + "/" + wide.router;
      }
    }
  }
  std::printf("best %d-shard speedup over 1 shard: %.2fx (%s) — shard "
              "scaling is core-bound; this host has %u core(s)\n",
              max_shards, best_speedup, best_label.c_str(),
              std::thread::hardware_concurrency());

  std::string json = "{\"schema\":\"safeloc.route_bench/v1\",";
  json += "\"queries_per_cell\":" + std::to_string(queries_per_cell) + ",";
  json += "\"hardware_threads\":" +
          std::to_string(std::thread::hardware_concurrency()) + ",";
  json += "\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellMeasurement& cell = cells[i];
    if (i > 0) json += ',';
    json += "{\"mix\":\"" + cell.mix + "\",";
    json += "\"router\":\"" + cell.router + "\",";
    json += "\"shards\":" + std::to_string(cell.shards) + ",";
    json += "\"queries\":" + std::to_string(cell.queries) + ",";
    json += "\"wall_s\":" + num(cell.wall_s) + ",";
    json += "\"qps\":" + num(cell.qps) + ",";
    json += "\"latency_us\":{\"p50\":" + num(cell.p50_us) +
            ",\"p99\":" + num(cell.p99_us) + "},";
    json += "\"imbalance\":" + num(cell.imbalance) + ",";
    json += "\"poisoned\":" + std::to_string(cell.poisoned) + ",";
    json += "\"flagged\":" + std::to_string(cell.flagged) + "}";
  }
  json += "]}\n";
  std::ofstream out("BENCH_route.json", std::ios::binary);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  std::printf("report written to BENCH_route.json\n");
  return 0;
}
