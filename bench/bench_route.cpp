// Routing/sharding bench: LocalizationService throughput across
// (shards x router policy x traffic mix), against device-realistic Poisson
// traffic — the scaling story on top of bench_serve's single-engine numbers.
//
// Pipeline: train one SAFELOC model per building through the ScenarioEngine
// (capture_final_gm so records carry serving calibration), publish them to
// the service, then for every grid cell replay a pre-materialized traffic
// stream closed-loop through submit() and measure queries/sec, p50/p99
// latency, per-shard placement, and — for the adversarial mix — PoisonGate
// flag counts. Each shard runs a single-worker QueryEngine, so the shards
// axis maps 1:1 onto cores on real hardware.
//
// Traffic mixes:
//   single        building 1 only
//   mixed         uniform over buildings {1, 2}
//   mixed_attack  mixed + a whole-stream evasion window (20% of queries at
//                 eps = 0.3) with a PoisonGate on the admission chain
//
// One extra cell runs the mixed stream against a *real process-per-shard
// fleet*: two `shard_server` child processes (spawned from the sibling
// binary) warm-load a partitioned store over unix sockets, and the service
// routes through RemoteBackends with a PartitionRouter. That cell measures
// the IPC tax of the wire protocol against the in-process 2-shard cell and
// records each shard's resident-model count next to its partition slice —
// the O(owned) memory contract, checked by scripts/check_bench.py.
//
// Knobs:
//   SAFELOC_SERVE_SMOKE=1 (or --smoke)  tiny grid for CI
//   SAFELOC_ROUTE_QUERIES=<n>           queries per grid cell
//   SAFELOC_ROUTE_REMOTE=0              skip the multi-process fleet cell
//   SAFELOC_EPOCHS                      training budget (model quality is
//                                       irrelevant to routing throughput)
//
// Writes BENCH_route.json ("safeloc.route_bench/v2"). Each cell carries
// the service's per-stage telemetry percentiles; the remote cell's stage
// set additionally shows the wire legs (serialize/RPC/deserialize) and the
// child engines' queue-wait — the same histograms, merged over SFRP.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/serve/admission.h"
#include "src/serve/model_store.h"
#include "src/serve/partition.h"
#include "src/serve/remote/remote_backend.h"
#include "src/serve/router.h"
#include "src/serve/service.h"
#include "src/serve/traffic.h"
#include "src/util/config.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

struct TrafficMix {
  std::string name;
  std::vector<int> buildings;
  double attack_fraction = 0.0;
  bool gate = false;
};

struct CellMeasurement {
  int shards = 0;
  std::string router;
  std::string mix;
  /// "local" = in-process QueryEngine shards; "remote" = one shard_server
  /// child process per shard behind the SFRP wire protocol.
  std::string transport = "local";
  std::size_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// max routed share / mean routed share (1.0 = perfectly even).
  double imbalance = 1.0;
  std::uint64_t flagged = 0;
  std::size_t poisoned = 0;
  /// Remote cells only: per-shard models resident in the child process vs
  /// the size of that shard's partition slice. Equal lists == the shard
  /// holds O(owned) models, not O(all).
  std::vector<std::uint64_t> resident_models;
  std::vector<std::uint64_t> owned_models;
  /// Remote cells only: the client pipelining configuration the cell ran
  /// at (pool connections x in-flight window x coalesced batch).
  int pipeline_pool = 0;
  int pipeline_window = 0;
  int pipeline_batch = 0;
  /// Fleet-merged telemetry after the replay (local engines or remote
  /// shards over the wire) — source of the per-stage JSON block.
  serve::telemetry::RegistrySnapshot metrics;
};

/// Closed-loop replay of `stream` through an already-configured service,
/// filling the measurement half of `cell` (timing, percentiles, imbalance,
/// flag counts). Shared by the in-process cells and the remote fleet cell.
void replay_stream(serve::LocalizationService& service,
                   const std::vector<serve::TimedQuery>& stream,
                   CellMeasurement& cell) {
  std::vector<double> latencies_us(stream.size(), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Closed loop: the routed shard's bounded queue applies backpressure.
    service.submit({stream[i].building, stream[i].x},
                   [&latencies_us, i](serve::Response response) {
                     latencies_us[i] = response.query.latency_us;
                   });
  }
  service.drain();
  const auto t1 = std::chrono::steady_clock::now();

  cell.queries = stream.size();
  cell.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cell.qps = static_cast<double>(stream.size()) / cell.wall_s;
  cell.p50_us = util::percentile(latencies_us, 50.0);
  cell.p99_us = util::percentile(latencies_us, 99.0);
  const serve::LocalizationService::Stats stats = service.stats();
  std::uint64_t max_routed = 0, total_routed = 0;
  for (const std::uint64_t r : stats.routed) {
    max_routed = std::max(max_routed, r);
    total_routed += r;
  }
  if (total_routed > 0) {
    const double mean_share = static_cast<double>(total_routed) /
                              static_cast<double>(stats.routed.size());
    cell.imbalance = static_cast<double>(max_routed) / mean_share;
  }
  cell.flagged = stats.flagged;
  cell.metrics = stats.metrics;
  for (const serve::TimedQuery& query : stream) {
    cell.poisoned += query.poisoned ? 1 : 0;
  }
}

CellMeasurement run_cell(const serve::ModelStore& store,
                         const std::vector<serve::TimedQuery>& stream,
                         int shards, const std::string& router,
                         const TrafficMix& mix) {
  serve::ServiceConfig config;
  config.shards = shards;
  config.engine.workers = 1;  // the shards axis IS the parallelism axis
  config.engine.max_batch = 64;
  config.engine.batch_window = std::chrono::microseconds(100);
  config.engine.queue_capacity = std::max<std::size_t>(
      static_cast<std::size_t>(shards) * config.engine.max_batch * 2, 256);
  serve::LocalizationService service(config);
  service.set_router(serve::make_router(router));
  if (mix.gate) service.add_admission(std::make_unique<serve::PoisonGate>());
  service.publish_latest(store);

  CellMeasurement cell;
  cell.shards = shards;
  cell.router = router;
  cell.mix = mix.name;
  replay_stream(service, stream, cell);
  return cell;
}

/// Path of a binary living next to this one (bench_route and shard_server
/// land in the same build directory).
std::string sibling_binary(const char* argv0, const std::string& name) {
  const std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return "./" + name;
  return self.substr(0, slash + 1) + name;
}

pid_t spawn_shard(const std::string& exe, const std::string& address,
                  std::uint32_t index, std::uint32_t count,
                  const std::string& store_path,
                  const std::string& partition_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: a minimal, fully-specified environment — shard_server's strict
  // env parsing sees exactly the fleet knobs and nothing inherited.
  std::vector<std::string> env = {
      "SAFELOC_SHARD_ADDRESS=" + address,
      "SAFELOC_SHARD_INDEX=" + std::to_string(index),
      "SAFELOC_SHARD_COUNT=" + std::to_string(count),
      "SAFELOC_SHARD_WORKERS=1",  // match the in-process cells
      "SAFELOC_SHARD_STORE=" + store_path,
      "SAFELOC_SHARD_PARTITION=" + partition_path,
  };
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& entry : env) envp.push_back(entry.data());
  envp.push_back(nullptr);
  std::string arg0 = exe;
  char* argv[] = {arg0.data(), nullptr};
  ::execve(exe.c_str(), argv, envp.data());
  std::fprintf(stderr, "bench_route: execve(%s) failed: %s\n", exe.c_str(),
               std::strerror(errno));
  ::_exit(127);
}

/// The multi-process fleet cell: two shard_server children warm-load a
/// partitioned store, the parent serves the mixed stream through
/// RemoteBackends + PartitionRouter. Per-shard residency is read back over
/// the wire (kStatsRequest) as the O(owned) memory-contract evidence.
CellMeasurement run_remote_cell(const serve::ModelStore& store,
                                const std::vector<serve::TimedQuery>& stream,
                                const TrafficMix& mix, const char* argv0) {
  constexpr std::uint32_t kShards = 2;
  const std::string tag = std::to_string(::getpid());
  const std::string store_path = "/tmp/safeloc-route-" + tag + "-store.bin";
  const std::string partition_path = "/tmp/safeloc-route-" + tag + "-part.bin";
  std::vector<std::string> addresses;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    addresses.push_back("unix:/tmp/safeloc-route-" + tag + "-shard" +
                        std::to_string(s) + ".sock");
  }

  // Explicit one-building-per-shard placement so each child's slice is a
  // strict subset of the store, making O(owned) observable.
  serve::PartitionMap partition;
  partition.shards = kShards;
  partition.owner[1] = 0;
  partition.owner[2] = 1;
  store.save_file(store_path);
  partition.save_file(partition_path);

  const std::string shard_exe = sibling_binary(argv0, "shard_server");
  std::vector<pid_t> children;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    children.push_back(spawn_shard(shard_exe, addresses[s], s, kShards,
                                   store_path, partition_path));
  }

  CellMeasurement cell;
  cell.shards = static_cast<int>(kShards);
  cell.router = "partition";
  cell.mix = mix.name;
  cell.transport = "remote";
  try {
    std::vector<std::unique_ptr<serve::QueryBackend>> backends;
    std::vector<serve::remote::RemoteBackend*> raw;
    // Pipelined client by default: the remote cell's job is to measure
    // the wire tax at the transport's best configuration, not at the
    // serial one-RPC-at-a-time floor. Env knobs let CI and check_bench
    // shrink the window when hunting a regression.
    const int pool = util::env_int_strict("SAFELOC_ROUTE_REMOTE_POOL", 2);
    const int window = util::env_int_strict("SAFELOC_ROUTE_REMOTE_WINDOW", 32);
    const int batch = util::env_int_strict("SAFELOC_ROUTE_REMOTE_BATCH", 16);
    cell.pipeline_pool = pool;
    cell.pipeline_window = window;
    cell.pipeline_batch = batch;
    for (const std::string& address : addresses) {
      serve::remote::RemoteBackendConfig config;
      config.address = address;
      config.connect_retries = 50;  // children may still be warm-loading
      config.retry_backoff = std::chrono::milliseconds(100);
      config.pool_size = pool;
      config.max_in_flight = window;
      config.max_batch = static_cast<std::size_t>(batch);
      auto backend = std::make_unique<serve::remote::RemoteBackend>(config);
      raw.push_back(backend.get());
      backends.push_back(std::move(backend));
    }
    serve::LocalizationService service(std::move(backends));
    service.set_partition(partition);
    service.set_router(std::make_unique<serve::PartitionRouter>(partition));
    replay_stream(service, stream, cell);

    for (std::uint32_t s = 0; s < kShards; ++s) {
      cell.resident_models.push_back(raw[s]->shard_stats().resident_models);
      cell.owned_models.push_back(partition.owned_by(s).size());
    }
  } catch (const std::exception& failure) {
    std::fprintf(stderr, "bench_route: remote fleet cell failed: %s\n",
                 failure.what());
    for (const pid_t child : children) ::kill(child, SIGKILL);
    for (const pid_t child : children) ::waitpid(child, nullptr, 0);
    std::remove(store_path.c_str());
    std::remove(partition_path.c_str());
    throw;
  }

  for (const std::string& address : addresses) {
    try {
      serve::remote::request_shutdown(address, std::chrono::seconds(5));
    } catch (const std::exception&) {
      // Fall through to the hard kill below.
    }
  }
  for (const pid_t child : children) {
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == 0) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
    }
  }
  std::remove(store_path.c_str());
  std::remove(partition_path.c_str());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = util::env_int_strict("SAFELOC_SERVE_SMOKE", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<int> shard_axis =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<std::string> router_axis = {"hash", "round_robin",
                                                "least_loaded"};
  const std::vector<TrafficMix> mixes = {
      {"single", {1}, 0.0, false},
      {"mixed", {1, 2}, 0.0, false},
      {"mixed_attack", {1, 2}, 0.2, true},
  };
  const std::size_t queries_per_cell = static_cast<std::size_t>(
      util::env_int_strict("SAFELOC_ROUTE_QUERIES", smoke ? 10'000 : 100'000));

  // One benign SAFELOC deployment per building, calibration captured for
  // the adversarial mix's PoisonGate.
  engine::ScenarioGrid grid;
  grid.base().framework = "SAFELOC";
  grid.base().rounds = 0;
  grid.base().server_epochs = util::env_int_strict("SAFELOC_EPOCHS", smoke ? 2 : 8);
  grid.buildings({1, 2});
  std::printf("bench_route — training SAFELOC on buildings 1+2 (%d epochs)...\n",
              grid.base().server_epochs);
  const engine::RunReport trained = engine::ScenarioEngine{}.run(
      grid, engine::default_thread_count(), /*capture_final_gm=*/true);
  serve::ModelStore store;
  store.publish_run(trained);

  // Pre-materialize one stream per mix, shared by every (shards, router)
  // cell of that mix so the comparison is apples-to-apples.
  std::vector<std::vector<serve::TimedQuery>> streams;
  for (const TrafficMix& mix : mixes) {
    serve::TrafficConfig traffic_config;
    traffic_config.buildings = mix.buildings;
    traffic_config.mean_qps = 200'000.0;
    traffic_config.attack_fraction = mix.attack_fraction;
    traffic_config.attack_epsilon = 0.3;
    streams.push_back(
        serve::TrafficGenerator(traffic_config).generate(queries_per_cell));
  }
  std::printf("replaying %zu queries per cell over a %zu-cell grid on %u "
              "core(s)%s\n",
              queries_per_cell,
              shard_axis.size() * router_axis.size() * mixes.size(),
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "");

  util::AsciiTable table({"mix", "router", "shards", "transport", "queries/s",
                          "p50 (us)", "p99 (us)", "imbalance", "flagged"});
  std::vector<CellMeasurement> cells;
  const auto add_table_row = [&table](const CellMeasurement& cell) {
    table.add_row({cell.mix, cell.router, std::to_string(cell.shards),
                   cell.transport, util::AsciiTable::num(cell.qps, 0),
                   util::AsciiTable::num(cell.p50_us, 1),
                   util::AsciiTable::num(cell.p99_us, 1),
                   util::AsciiTable::num(cell.imbalance, 2),
                   std::to_string(cell.flagged)});
  };
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (const std::string& router : router_axis) {
      for (const int shards : shard_axis) {
        const CellMeasurement cell =
            run_cell(store, streams[m], shards, router, mixes[m]);
        cells.push_back(cell);
        add_table_row(cell);
      }
    }
  }

  // The process-per-shard fleet cell — same mixed stream, real wire.
  if (util::env_int_strict("SAFELOC_ROUTE_REMOTE", 1) != 0) {
    std::printf("spawning a 2-process shard_server fleet for the remote "
                "cell...\n");
    const CellMeasurement remote =
        run_remote_cell(store, streams[1], mixes[1], argv[0]);
    cells.push_back(remote);
    add_table_row(remote);
    for (const CellMeasurement& local : cells) {
      if (local.transport == "local" && local.mix == remote.mix &&
          local.shards == remote.shards && local.router == "hash" &&
          local.qps > 0.0) {
        std::printf("IPC tax: remote fleet serves at %.0f%% of the "
                    "in-process 2-shard cell (%.0f vs %.0f queries/s)\n",
                    100.0 * remote.qps / local.qps, remote.qps, local.qps);
        break;
      }
    }
    for (std::size_t s = 0; s < remote.resident_models.size(); ++s) {
      std::printf("shard %zu resident models: %llu (partition slice: %llu) "
                  "— memory is O(owned), not O(all %zu models)\n", s,
                  static_cast<unsigned long long>(remote.resident_models[s]),
                  static_cast<unsigned long long>(remote.owned_models[s]),
                  store.names().size());
    }
  }
  std::printf("%s", table.render().c_str());

  // Scaling summary: best speedup of the widest fleet over one shard.
  const int max_shards = shard_axis.back();
  double best_speedup = 0.0;
  std::string best_label;
  for (const CellMeasurement& wide : cells) {
    if (wide.shards != max_shards) continue;
    for (const CellMeasurement& one : cells) {
      if (one.shards == 1 && one.router == wide.router && one.mix == wide.mix &&
          one.qps > 0.0 && wide.qps / one.qps > best_speedup) {
        best_speedup = wide.qps / one.qps;
        best_label = wide.mix + "/" + wide.router;
      }
    }
  }
  std::printf("best %d-shard speedup over 1 shard: %.2fx (%s) — shard "
              "scaling is core-bound; this host has %u core(s)\n",
              max_shards, best_speedup, best_label.c_str(),
              std::thread::hardware_concurrency());

  std::string json = "{\"schema\":\"safeloc.route_bench/v2\",";
  json += "\"queries_per_cell\":" + std::to_string(queries_per_cell) + ",";
  json += "\"hardware_threads\":" +
          std::to_string(std::thread::hardware_concurrency()) + ",";
  json += "\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellMeasurement& cell = cells[i];
    if (i > 0) json += ',';
    json += "{\"mix\":\"" + cell.mix + "\",";
    json += "\"router\":\"" + cell.router + "\",";
    json += "\"shards\":" + std::to_string(cell.shards) + ",";
    json += "\"transport\":\"" + cell.transport + "\",";
    if (cell.transport == "remote") {
      const auto list = [](const std::vector<std::uint64_t>& values) {
        std::string out = "[";
        for (std::size_t v = 0; v < values.size(); ++v) {
          if (v > 0) out += ',';
          out += std::to_string(values[v]);
        }
        return out + "]";
      };
      json += "\"resident_models\":" + list(cell.resident_models) + ",";
      json += "\"owned_models\":" + list(cell.owned_models) + ",";
      json += "\"pipeline\":{\"pool\":" + std::to_string(cell.pipeline_pool) +
              ",\"window\":" + std::to_string(cell.pipeline_window) +
              ",\"batch\":" + std::to_string(cell.pipeline_batch) + "},";
    }
    json += "\"queries\":" + std::to_string(cell.queries) + ",";
    json += "\"wall_s\":" + num(cell.wall_s) + ",";
    json += "\"qps\":" + num(cell.qps) + ",";
    json += "\"latency_us\":{\"p50\":" + num(cell.p50_us) +
            ",\"p99\":" + num(cell.p99_us) + "},";
    json += "\"stages\":" + serve::telemetry::stages_to_json(cell.metrics) +
            ",";
    json += "\"imbalance\":" + num(cell.imbalance) + ",";
    json += "\"poisoned\":" + std::to_string(cell.poisoned) + ",";
    json += "\"flagged\":" + std::to_string(cell.flagged) + "}";
  }
  json += "]}\n";
  std::ofstream out("BENCH_route.json", std::ios::binary);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  std::printf("report written to BENCH_route.json\n");
  return 0;
}
