// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench builds a declarative engine::ScenarioGrid, executes it on the
// ScenarioEngine thread pool (SAFELOC_THREADS workers), and emits a
// machine-readable BENCH_<name>.json run report next to the paper-style
// ASCII table.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/engine/engine.h"
#include "src/util/config.h"

namespace safeloc::bench {

/// Buildings a bench sweeps. The paper aggregates across all five; the fast
/// profile defaults to a representative subset to keep the suite snappy.
/// Override with SAFELOC_BUILDINGS=<count 1..5>.
inline std::vector<int> bench_buildings() {
  const util::RunScale& scale = util::run_scale();
  const int wanted =
      util::env_int_strict("SAFELOC_BUILDINGS", scale.fast ? 1 : 5);
  std::vector<int> ids;
  for (int b = 1; b <= 5 && static_cast<int>(ids.size()) < wanted; ++b) {
    ids.push_back(b);
  }
  return ids;
}

inline attack::AttackConfig make_attack(attack::AttackKind kind,
                                        double epsilon) {
  attack::AttackConfig config;
  config.kind = kind;
  config.epsilon = epsilon;
  return config;
}

inline void print_scale_banner(const char* bench_name) {
  const util::RunScale& scale = util::run_scale();
  std::printf(
      "%s — profile: %s (epochs=%d rounds=%d buildings=%zu threads=%d); "
      "SAFELOC_FAST=0 for paper-scale budgets\n",
      bench_name, scale.fast ? "fast" : "paper", scale.server_epochs,
      scale.fl_rounds, bench_buildings().size(),
      engine::default_thread_count());
}

/// Executes the grid on the shared engine with SAFELOC_THREADS workers and
/// writes the structured trajectory report to BENCH_<name>.json.
inline engine::RunReport run_grid(const engine::ScenarioGrid& grid,
                                  const std::string& name) {
  const engine::ScenarioEngine eng;
  engine::RunReport report = eng.run(grid, engine::default_thread_count());
  report.write_json("BENCH_" + name + ".json");
  return report;
}

/// Pools every cell's raw errors by (framework, attack label) — the
/// cross-building aggregation behind the paper's bar/box figures.
inline std::map<std::string, std::map<std::string, std::vector<double>>>
pool_by_framework_and_attack(const engine::RunReport& report) {
  std::map<std::string, std::map<std::string, std::vector<double>>> pooled;
  for (const engine::CellResult& cell : report.cells) {
    auto& sink =
        pooled[cell.spec.framework][cell.spec.resolved_attack_label()];
    sink.insert(sink.end(), cell.errors_m.begin(), cell.errors_m.end());
  }
  return pooled;
}

}  // namespace safeloc::bench
