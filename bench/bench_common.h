// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/util/config.h"

namespace safeloc::bench {

/// Buildings a bench sweeps. The paper aggregates across all five; the fast
/// profile defaults to a representative subset to keep the suite snappy.
/// Override with SAFELOC_BUILDINGS=<count 1..5>.
inline std::vector<int> bench_buildings() {
  const util::RunScale& scale = util::run_scale();
  const int wanted =
      util::env_int("SAFELOC_BUILDINGS", scale.fast ? 1 : 5);
  std::vector<int> ids;
  for (int b = 1; b <= 5 && static_cast<int>(ids.size()) < wanted; ++b) {
    ids.push_back(b);
  }
  return ids;
}

inline attack::AttackConfig make_attack(attack::AttackKind kind,
                                        double epsilon) {
  attack::AttackConfig config;
  config.kind = kind;
  config.epsilon = epsilon;
  return config;
}

inline void print_scale_banner(const char* bench_name) {
  const util::RunScale& scale = util::run_scale();
  std::printf(
      "%s — profile: %s (epochs=%d rounds=%d buildings=%zu); "
      "SAFELOC_FAST=0 for paper-scale budgets\n",
      bench_name, scale.fast ? "fast" : "paper", scale.server_epochs,
      scale.fl_rounds, bench_buildings().size());
}

}  // namespace safeloc::bench
