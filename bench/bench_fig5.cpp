// Fig. 5: SAFELOC mean localization error as a heatmap of attack type x
// perturbation magnitude ε.
//
// Paper reference: stable mean error for every attack up to ε < 0.1; still
// stable for backdoors at ε > 0.1 (detection + de-noising + saliency), with
// label flipping drifting up from ε ≈ 0.2 to ~4.38 m at ε = 1.0 (clean
// inputs evade the detector; the saliency map absorbs most but not all of
// the damage).
#include <map>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 5: attack strength sweep (heatmap)");
  const util::RunScale& scale = util::run_scale();

  // Low range 0.01..0.09, high range 0.1..1.0 (paper's grid; the fast
  // profile thins the low range).
  std::vector<double> epsilons;
  if (scale.fast) {
    epsilons = {0.01, 0.05, 0.1, 0.3, 0.6, 1.0};
  } else {
    for (int i = 1; i <= 9; ++i) epsilons.push_back(0.01 * i);
    for (int i = 1; i <= 10; ++i) epsilons.push_back(0.1 * i);
  }

  std::vector<attack::AttackConfig> attacks;
  for (const auto kind : attack::all_attacks()) {
    attacks.push_back(bench::make_attack(kind, 0.0));  // ε from the axis
  }

  engine::ScenarioGrid grid;
  grid.base().framework = "SAFELOC";
  grid.buildings(bench::bench_buildings()).attacks(attacks).epsilons(epsilons);
  const engine::RunReport report = bench::run_grid(grid, "fig5");

  // (attack kind, epsilon) -> errors pooled over buildings.
  std::map<std::pair<std::string, double>, util::RunningStats> pooled;
  for (const engine::CellResult& cell : report.cells) {
    auto& stats = pooled[{attack::to_string(cell.spec.attack.kind),
                          cell.spec.attack.epsilon}];
    for (const double e : cell.errors_m) stats.add(e);
  }

  util::CsvWriter csv("fig5.csv");
  csv.write_row({"attack", "epsilon", "mean_error_m"});
  std::vector<std::string> header = {"attack \\ eps"};
  for (const double e : epsilons) header.push_back(util::AsciiTable::num(e));
  util::AsciiTable table(std::move(header));

  for (const auto kind : attack::all_attacks()) {
    std::vector<std::string> row = {attack::to_string(kind)};
    for (const double epsilon : epsilons) {
      const double mean =
          pooled.at({attack::to_string(kind), epsilon}).mean();
      row.push_back(util::AsciiTable::num(mean));
      csv.write_row({attack::to_string(kind), util::CsvWriter::cell(epsilon),
                     util::CsvWriter::cell(mean)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("series written to fig5.csv + BENCH_fig5.json; paper: flat rows "
              "for backdoors, label-flip rising from eps ~0.2 to ~4.4 m at "
              "eps = 1.0\n");
  return 0;
}
