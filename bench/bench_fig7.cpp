// Fig. 7: scalability — mean localization error as the population grows
// from 6 to 24 clients with the poisoned contingent growing from 1 to 12,
// for SAFELOC vs. the two strongest baselines (ONLAD, FEDHIL).
//
// Poisoned clients alternate label flipping and FGSM backdoors
// (ScenarioSpec::attack_mix); the engine pretrains each framework once and
// runs every population from the same snapshot.
//
// Paper reference: FEDHIL's error climbs steadily with more poisoned
// clients; ONLAD and SAFELOC stay stable, SAFELOC lowest throughout.
#include <map>

#include "bench/bench_common.h"
#include "src/util/csv.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 7: scalability with client count");

  // (total clients, poisoned clients) — 6/1 to 24/12 as in the paper.
  const std::vector<std::pair<std::size_t, std::size_t>> populations = {
      {6, 1}, {12, 4}, {18, 8}, {24, 12}};
  const std::vector<std::string> frameworks = {"SAFELOC", "ONLAD", "FEDHIL"};

  engine::ScenarioGrid grid;
  // The paper's scalability experiment is on Building 3.
  grid.base().building = 3;
  grid.base().attack = bench::make_attack(attack::AttackKind::kFgsm, 0.5);
  grid.base().attack_mix = {
      bench::make_attack(attack::AttackKind::kLabelFlip, 1.0),
      bench::make_attack(attack::AttackKind::kFgsm, 0.5)};
  grid.base().attack_label = "mixed-poison";
  grid.frameworks(frameworks).populations(populations);
  const engine::RunReport report = bench::run_grid(grid, "fig7");

  // (framework, total clients) -> cell.
  std::map<std::pair<std::string, std::size_t>, const engine::CellResult*>
      by_cell;
  for (const engine::CellResult& cell : report.cells) {
    by_cell[{cell.spec.framework, cell.spec.total_clients}] = &cell;
  }

  util::CsvWriter csv("fig7.csv");
  csv.write_row({"framework", "total_clients", "poisoned_clients",
                 "mean_error_m", "worst_error_m"});
  std::vector<std::string> header = {"(total, poisoned)"};
  for (const std::string& name : frameworks) header.push_back(name);
  util::AsciiTable table(std::move(header));

  for (const auto& [total, poisoned] : populations) {
    std::vector<std::string> row = {"(" + std::to_string(total) + ", " +
                                    std::to_string(poisoned) + ")"};
    for (const std::string& name : frameworks) {
      const engine::CellResult& cell = *by_cell.at({name, total});
      row.push_back(util::AsciiTable::num(cell.stats.mean_m));
      csv.write_row({name, util::CsvWriter::cell(total),
                     util::CsvWriter::cell(poisoned),
                     util::CsvWriter::cell(cell.stats.mean_m),
                     util::CsvWriter::cell(cell.stats.worst_m)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("mean error (m); series written to fig7.csv + BENCH_fig7.json; "
              "paper: FEDHIL climbs with poisoned clients, ONLAD/SAFELOC "
              "stay stable\n");
  return 0;
}
