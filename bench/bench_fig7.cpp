// Fig. 7: scalability — mean localization error as the population grows
// from 6 to 24 clients with the poisoned contingent growing from 1 to 12,
// for SAFELOC vs. the two strongest baselines (ONLAD, FEDHIL).
//
// Paper reference: FEDHIL's error climbs steadily with more poisoned
// clients; ONLAD and SAFELOC stay stable, SAFELOC lowest throughout.
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/frameworks.h"
#include "src/eval/experiment.h"
#include "src/util/csv.h"
#include "src/util/table.h"

int main() {
  using namespace safeloc;
  bench::print_scale_banner("Fig. 7: scalability with client count");
  const util::RunScale& scale = util::run_scale();

  // (total clients, poisoned clients) — 6/1 to 24/12 as in the paper.
  const std::vector<std::pair<std::size_t, std::size_t>> populations = {
      {6, 1}, {12, 4}, {18, 8}, {24, 12}};
  const baselines::FrameworkId frameworks[] = {
      baselines::FrameworkId::kSafeLoc, baselines::FrameworkId::kOnlad,
      baselines::FrameworkId::kFedHil};
  // The paper's scalability experiment is on Building 3.
  const int building = 3;

  // Poisoned clients alternate label flipping and FGSM backdoors.
  auto make_scenario = [&](std::size_t total, std::size_t poisoned) {
    fl::FlScenario scenario;
    scenario.rounds = scale.fl_rounds;
    scenario.local = eval::Experiment::default_local_opts();
    scenario.clients = fl::scaled_clients(
        total, poisoned, bench::make_attack(attack::AttackKind::kFgsm, 0.5));
    for (std::size_t i = 0; i < poisoned; i += 2) {
      scenario.clients[i].attack =
          bench::make_attack(attack::AttackKind::kLabelFlip, 1.0);
      scenario.clients[i].attack.seed += i;
    }
    return scenario;
  };

  const eval::Experiment experiment(building);
  util::CsvWriter csv("fig7.csv");
  csv.write_row({"framework", "total_clients", "poisoned_clients",
                 "mean_error_m", "worst_error_m"});
  std::vector<std::string> header = {"(total, poisoned)"};
  for (const auto id : frameworks) header.push_back(baselines::to_string(id));
  util::AsciiTable table(std::move(header));

  // Pretrain each framework once; every population starts from the snapshot.
  std::vector<std::unique_ptr<fl::FederatedFramework>> instances;
  for (const auto id : frameworks) {
    instances.push_back(baselines::make_framework(id));
    experiment.pretrain(*instances.back(), scale.server_epochs);
  }

  for (const auto& [total, poisoned] : populations) {
    std::vector<std::string> row = {"(" + std::to_string(total) + ", " +
                                    std::to_string(poisoned) + ")"};
    for (std::size_t f = 0; f < instances.size(); ++f) {
      const auto outcome = experiment.run_scenario(
          *instances[f], make_scenario(total, poisoned));
      row.push_back(util::AsciiTable::num(outcome.stats.mean_m));
      csv.write_row({instances[f]->name(), util::CsvWriter::cell(total),
                     util::CsvWriter::cell(poisoned),
                     util::CsvWriter::cell(outcome.stats.mean_m),
                     util::CsvWriter::cell(outcome.stats.worst_m)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("mean error (m); series written to fig7.csv; paper: FEDHIL "
              "climbs with poisoned clients, ONLAD/SAFELOC stay stable\n");
  return 0;
}
