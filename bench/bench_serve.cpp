// Serving-layer load bench: throughput and latency of one serving shard
// across micro-batch caps and worker counts, against device-realistic
// Poisson traffic — plus a microbenchmark of every supported ServingNet
// GEMM dispatch variant (scalar/sse2/avx2) on the hot-loop shapes and a
// cache-busting shape, with the runtime-selected variant recorded so the CI
// bench gate (scripts/check_bench.py) can pin dispatch per machine.
//
// Pipeline: train a SAFELOC global model through the ScenarioEngine
// (benign cell, capture_final_gm), publish it into a single-shard
// LocalizationService, and for every (workers x batch) grid cell replay a
// pre-materialized TrafficGenerator stream closed-loop through submit()
// (producers go as fast as the bounded queue admits). Reports queries/sec,
// p50/p99/mean submit-to-completion latency, and the service's per-stage
// telemetry breakdown (admission/routing/queue-wait/batch-form/inference
// p50/p95/p99 from the fleet registry) per cell, written to
// BENCH_serve.json ("safeloc.serve_bench/v4"). bench_route sweeps the
// multi-shard axis on top of these single-shard numbers.
//
// Knobs:
//   SAFELOC_SERVE_SMOKE=1 (or --smoke)  tiny 1-cell grid, ~1 s total (CI)
//   SAFELOC_SERVE_QUERIES=<n>           queries per grid cell
//   SAFELOC_EPOCHS / SAFELOC_FAST       training budget (quality is
//                                       irrelevant to serving throughput,
//                                       so the default stays small)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/nn/matrix.h"
#include "src/serve/model_store.h"
#include "src/serve/service.h"
#include "src/serve/traffic.h"
#include "src/util/config.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

struct CellMeasurement {
  int workers = 0;
  std::size_t batch = 0;
  std::size_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double mean_batch_fill = 0.0;
  /// The service's merged telemetry after the replay — source of the
  /// per-stage percentile block in the JSON report.
  serve::telemetry::RegistrySnapshot metrics;
};

CellMeasurement run_cell(const serve::ModelRecord& record,
                         const std::vector<serve::TimedQuery>& stream,
                         int workers, std::size_t batch) {
  serve::ServiceConfig config;
  config.shards = 1;
  config.engine.workers = workers;
  config.engine.max_batch = batch;
  config.engine.batch_window = std::chrono::microseconds(100);
  // Closed-loop with bounded outstanding work: enough backlog to keep every
  // worker's batches full, shallow enough that the latency columns measure
  // batching + service time instead of raw backlog depth.
  config.engine.queue_capacity =
      std::max<std::size_t>(static_cast<std::size_t>(workers) * batch * 2, 256);
  serve::LocalizationService service(config);
  service.publish(record);

  std::vector<double> latencies_us(stream.size(), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Closed loop: the bounded queue applies backpressure, so submission
    // runs at whatever rate the workers sustain.
    service.submit({stream[i].building, stream[i].x},
                   [&latencies_us, i](serve::Response response) {
                     latencies_us[i] = response.query.latency_us;
                   });
  }
  service.drain();
  const auto t1 = std::chrono::steady_clock::now();

  CellMeasurement cell;
  cell.workers = workers;
  cell.batch = batch;
  cell.queries = stream.size();
  cell.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cell.qps = static_cast<double>(stream.size()) / cell.wall_s;
  cell.p50_us = util::percentile(latencies_us, 50.0);
  cell.p99_us = util::percentile(latencies_us, 99.0);
  cell.mean_us = util::mean_of(latencies_us);
  auto& engine = dynamic_cast<serve::QueryEngine&>(service.shard(0));
  cell.mean_batch_fill = engine.stats().mean_batch_fill();
  cell.metrics = service.stats().metrics;
  return cell;
}

struct KernelMeasurement {
  std::size_t m = 0, k = 0, n = 0;
  bool cache_busting = false;
  /// Median-of-5 microseconds per call, indexed like supported_variants().
  std::vector<std::pair<nn::simd::Variant, double>> variant_us;

  [[nodiscard]] double us_for(nn::simd::Variant v) const {
    for (const auto& [variant, us] : variant_us) {
      if (variant == v) return us;
    }
    return 0.0;
  }
};

/// Times every supported dispatch variant on one serving shape
/// (median-of-5 reps). All variants are bit-identical (asserted here too),
/// so this measures pure kernel speed.
KernelMeasurement time_kernels(std::size_t m, std::size_t k, std::size_t n,
                               int reps) {
  util::Rng rng(0xbe7c4);
  nn::Matrix a(m, k), b(k, n), out;
  for (float& v : a.flat()) v = rng.uniform_f(0.0f, 1.0f);
  for (float& v : b.flat()) v = rng.uniform_f(-0.5f, 0.5f);

  KernelMeasurement kernel;
  kernel.m = m;
  kernel.k = k;
  kernel.n = n;
  kernel.cache_busting = k * n * sizeof(float) > nn::kBlockedGemmBytes;

  nn::Matrix reference;
  nn::matmul_into(a, b, reference);
  for (const nn::simd::Variant variant : nn::simd::supported_variants()) {
    std::vector<double> runs;
    for (int r = 0; r < 5; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        nn::matmul_into_variant(a, b, out, variant);
      }
      const auto t1 = std::chrono::steady_clock::now();
      runs.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count() / reps);
    }
    if (!(out == reference)) {
      std::fprintf(stderr,
                   "FATAL: %s kernel diverged from scalar at %zux%zux%zu\n",
                   nn::simd::variant_name(variant), m, k, n);
      std::exit(1);
    }
    kernel.variant_us.emplace_back(variant, util::percentile(runs, 50.0));
  }
  return kernel;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = util::env_int_strict("SAFELOC_SERVE_SMOKE", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<int> worker_axis = smoke ? std::vector<int>{2}
                                             : std::vector<int>{1, 2, 4, 8};
  const std::vector<std::size_t> batch_axis =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{1, 16, 64, 256};
  const std::size_t queries_per_cell = static_cast<std::size_t>(
      util::env_int_strict("SAFELOC_SERVE_QUERIES", smoke ? 20'000 : 200'000));

  // Train and publish the served model. Serving throughput does not depend
  // on model quality, so the training budget stays deliberately small.
  engine::ScenarioSpec spec;
  spec.framework = "SAFELOC";
  spec.building = 1;
  spec.rounds = 0;
  spec.server_epochs = util::env_int_strict("SAFELOC_EPOCHS", smoke ? 2 : 8);
  std::printf("bench_serve — training %s on building %d (%d epochs)...\n",
              spec.framework.c_str(), spec.building, spec.server_epochs);
  const engine::ScenarioEngine trainer;
  const engine::RunReport trained =
      trainer.run(std::vector<engine::ScenarioSpec>{spec}, 1,
                  /*capture_final_gm=*/true);
  serve::ModelStore store;
  store.publish(trained.cells.front());
  const serve::ModelRecord& record =
      store.latest(serve::default_model_name(spec));

  serve::TrafficConfig traffic_config;
  traffic_config.buildings = {spec.building};
  traffic_config.mean_qps = 200'000.0;
  serve::TrafficGenerator traffic(traffic_config);
  const std::vector<serve::TimedQuery> stream =
      traffic.generate(queries_per_cell);
  std::printf("replaying %zu device-realistic queries per cell (%zu-cell "
              "grid)%s\n",
              stream.size(), worker_axis.size() * batch_axis.size(),
              smoke ? " [smoke]" : "");

  util::AsciiTable table({"workers", "batch", "queries/s", "p50 (us)",
                          "p99 (us)", "mean (us)", "batch fill"});
  std::vector<CellMeasurement> cells;
  for (const int workers : worker_axis) {
    for (const std::size_t batch : batch_axis) {
      const CellMeasurement cell = run_cell(record, stream, workers, batch);
      cells.push_back(cell);
      table.add_row({std::to_string(cell.workers), std::to_string(cell.batch),
                     util::AsciiTable::num(cell.qps, 0),
                     util::AsciiTable::num(cell.p50_us, 1),
                     util::AsciiTable::num(cell.p99_us, 1),
                     util::AsciiTable::num(cell.mean_us, 1),
                     util::AsciiTable::num(cell.mean_batch_fill, 1)});
    }
  }
  std::printf("%s", table.render().c_str());

  // ServingNet GEMM dispatch variants on the hot-loop shapes — (batch x
  // 128) x (128 x 89) is the widest layer of the paper architecture — plus
  // a cache-busting shape whose B footprint (~8.1 MB) exceeds
  // kBlockedGemmBytes, the regime the CI gate holds the AVX2 speedup to.
  const nn::simd::Variant selected = nn::simd::active_variant();
  const auto variants = nn::simd::supported_variants();
  // "auto"/empty mean the dispatcher picked freely — only a concrete
  // variant name counts as forced (mirrors resolve_from_env).
  const std::string kernel_env = util::env_string("SAFELOC_KERNEL");
  const bool forced = !kernel_env.empty() && kernel_env != "auto";
  std::string variant_header;
  for (const nn::simd::Variant v : variants) {
    variant_header += std::string(variant_header.empty() ? "" : ",") +
                      nn::simd::variant_name(v);
  }
  std::printf("kernel dispatch: selected=%s supported=[%s]%s\n",
              nn::simd::variant_name(selected), variant_header.c_str(),
              forced ? " (forced via SAFELOC_KERNEL)" : "");

  struct KernelShape {
    std::size_t m, k, n;
    int reps;
  };
  const std::vector<KernelShape> shapes = {
      {1, 128, 89, smoke ? 200 : 2000},
      {64, 128, 89, smoke ? 200 : 2000},
      {256, 128, 89, smoke ? 100 : 1000},
      {1024, 128, 89, smoke ? 50 : 500},
      // Cache-busting: B = 520 x 4096 floats streams from memory.
      {64, 520, 4096, smoke ? 2 : 10},
  };

  std::vector<std::string> columns = {"m", "k", "n"};
  for (const nn::simd::Variant v : variants) {
    columns.push_back(std::string(nn::simd::variant_name(v)) + " (us)");
  }
  columns.push_back("speedup");
  util::AsciiTable kernel_table(columns);
  std::vector<KernelMeasurement> kernels;
  for (const KernelShape& shape : shapes) {
    const KernelMeasurement kernel =
        time_kernels(shape.m, shape.k, shape.n, shape.reps);
    kernels.push_back(kernel);
    std::vector<std::string> row = {std::to_string(kernel.m),
                                    std::to_string(kernel.k),
                                    std::to_string(kernel.n)};
    double best_us = 0.0;
    for (const auto& [variant, us] : kernel.variant_us) {
      row.push_back(util::AsciiTable::num(us, 2));
      if (best_us == 0.0 || us < best_us) best_us = us;
    }
    const double scalar_us = kernel.us_for(nn::simd::Variant::kScalar);
    row.push_back(util::AsciiTable::num(
        best_us > 0.0 ? scalar_us / best_us : 1.0, 2));
    kernel_table.add_row(row);
  }
  std::printf("GEMM dispatch variants (bit-identical results):\n%s",
              kernel_table.render().c_str());

  std::string json = "{\"schema\":\"safeloc.serve_bench/v4\",";
  json += "\"kernel_dispatch\":{\"selected\":\"" +
          std::string(nn::simd::variant_name(selected)) + "\",";
  json += "\"forced\":";
  json += forced ? "true" : "false";
  json += ",\"supported\":[";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (i > 0) json += ',';
    json += "\"" + std::string(nn::simd::variant_name(variants[i])) + "\"";
  }
  json += "]},";
  json += "\"model\":{\"name\":\"" + record.name + "\",";
  json += "\"framework\":\"" + record.provenance.framework + "\",";
  json += "\"building\":" + std::to_string(record.provenance.building) + ",";
  json += "\"version\":" + std::to_string(record.version) + ",";
  json += "\"num_classes\":" +
          std::to_string(record.provenance.num_classes) + "},";
  json += "\"queries_per_cell\":" + std::to_string(queries_per_cell) + ",";
  json += "\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellMeasurement& cell = cells[i];
    if (i > 0) json += ',';
    json += "{\"workers\":" + std::to_string(cell.workers) + ",";
    json += "\"batch\":" + std::to_string(cell.batch) + ",";
    json += "\"queries\":" + std::to_string(cell.queries) + ",";
    json += "\"wall_s\":" + num(cell.wall_s) + ",";
    json += "\"qps\":" + num(cell.qps) + ",";
    json += "\"latency_us\":{\"p50\":" + num(cell.p50_us) +
            ",\"p99\":" + num(cell.p99_us) +
            ",\"mean\":" + num(cell.mean_us) + "},";
    json += "\"stages\":" + serve::telemetry::stages_to_json(cell.metrics) +
            ",";
    json += "\"mean_batch_fill\":" + num(cell.mean_batch_fill) + "}";
  }
  json += "],\"kernels\":[";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelMeasurement& kernel = kernels[i];
    if (i > 0) json += ',';
    json += "{\"m\":" + std::to_string(kernel.m) + ",";
    json += "\"k\":" + std::to_string(kernel.k) + ",";
    json += "\"n\":" + std::to_string(kernel.n) + ",";
    json += "\"cache_busting\":";
    json += kernel.cache_busting ? "true" : "false";
    json += ",\"variants_us\":{";
    for (std::size_t v = 0; v < kernel.variant_us.size(); ++v) {
      if (v > 0) json += ',';
      json += "\"" +
              std::string(nn::simd::variant_name(kernel.variant_us[v].first)) +
              "\":" + num(kernel.variant_us[v].second);
    }
    json += "}}";
  }
  json += "]}\n";
  std::ofstream out("BENCH_serve.json", std::ios::binary);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  std::printf("report written to BENCH_serve.json\n");

  // Headline: best sustained throughput at batch >= 64.
  double best_qps = 0.0;
  for (const CellMeasurement& cell : cells) {
    if (cell.batch >= 64 && cell.qps > best_qps) best_qps = cell.qps;
  }
  std::printf("peak batched throughput: %.0f queries/sec\n", best_qps);
  return 0;
}
