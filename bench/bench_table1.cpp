// Table I: model inference latency and total parameters for every
// registered framework.
//
// The google-benchmark section microbenchmarks a single-fingerprint
// predict() call per framework (the paper's "Model Inference Latency"); the
// paper-style summary table is printed afterwards. Absolute microseconds on
// this host differ from the paper's phone-measured milliseconds, but the
// ordering and the SAFELOC speedup factor are the comparable shape.
//
// Frameworks come from the FrameworkRegistry, so a newly registered
// strategy shows up here with no bench edits (KRUM is the registry-only
// extra beyond the paper's six).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/engine/registry.h"
#include "src/eval/experiment.h"
#include "src/eval/timing.h"
#include "src/util/table.h"

namespace {

using namespace safeloc;

struct PreparedFramework {
  std::string id;
  std::unique_ptr<fl::FederatedFramework> framework;
};

/// Frameworks pretrained just enough to exercise the real inference path
/// (latency does not depend on training quality).
std::vector<PreparedFramework>& prepared() {
  static std::vector<PreparedFramework> instances = [] {
    const eval::Experiment experiment(/*building_id=*/1);
    const auto& registry = engine::FrameworkRegistry::global();
    std::vector<PreparedFramework> out;
    for (const std::string& id : registry.ids()) {
      PreparedFramework p{id, registry.create(id)};
      experiment.pretrain(*p.framework, /*epochs=*/3);
      out.push_back(std::move(p));
    }
    return out;
  }();
  return instances;
}

const nn::Matrix& sample_fingerprint() {
  static const nn::Matrix sample = [] {
    const eval::Experiment experiment(/*building_id=*/1);
    return experiment.training_set().x.slice_rows(0, 1);
  }();
  return sample;
}

void run_inference(benchmark::State& state, fl::FederatedFramework& fw) {
  const nn::Matrix& x = sample_fingerprint();
  for (auto _ : state) {
    auto labels = fw.predict(x);
    benchmark::DoNotOptimize(labels);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (auto& p : prepared()) {
    benchmark::RegisterBenchmark(
        ("inference/" + p.id).c_str(),
        [&p](benchmark::State& state) { run_inference(state, *p.framework); });
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Paper-style Table I.
  std::printf("\nTABLE I: MODEL LATENCY AND PARAMETERS COMPARISON\n");
  util::AsciiTable table(
      {"Framework", "Inference Latency (us)", "Total Parameters"});
  for (auto& p : prepared()) {
    const auto latency =
        eval::measure_inference_latency(*p.framework, sample_fingerprint());
    table.add_row({p.id, util::AsciiTable::num(latency.mean_us, 1),
                   std::to_string(p.framework->parameter_count())});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper reference (ms / params): SAFELOC 64/41094, ONLAD 87/130185, "
      "FEDHIL 84/97341, FEDCC 67/42993, FEDLS 103/282676, FEDLOC 135/137801\n");
  return 0;
}
